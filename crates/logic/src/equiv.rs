//! Combinational equivalence checking between two netlists.
//!
//! `Synthesize()` must never change the circuit function; this module makes
//! that checkable as a first-class operation: exhaustive for small
//! interfaces, seeded-random vector comparison beyond that. The resynthesis
//! procedure's tests use it, and downstream users can assert it after any
//! netlist surgery.

use rsyn_netlist::{sim::ParallelSim, CombView, Netlist};

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// Proven equivalent by exhaustive enumeration.
    Equivalent,
    /// No mismatch found over the given number of random vectors (not a
    /// proof).
    ProbablyEquivalent {
        /// Vectors simulated.
        vectors: usize,
    },
    /// A distinguishing input assignment was found.
    NotEquivalent {
        /// PI values (in view order) exposing the difference.
        counterexample: Vec<bool>,
    },
    /// The interfaces differ (PI/PO counts), so the circuits are not
    /// comparable.
    InterfaceMismatch,
}

/// Interfaces with at most this many PIs are checked exhaustively.
pub const EXHAUSTIVE_PI_LIMIT: usize = 18;

/// Checks whether two netlists compute the same PO functions over matching
/// view interfaces (PIs and POs are matched by position).
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    random_vectors: usize,
    seed: u64,
) -> EquivResult {
    let (Ok(va), Ok(vb)) = (a.comb_view(), b.comb_view()) else {
        return EquivResult::InterfaceMismatch;
    };
    if va.pis.len() != vb.pis.len() || va.pos.len() != vb.pos.len() {
        return EquivResult::InterfaceMismatch;
    }
    let n = va.pis.len();
    if n <= EXHAUSTIVE_PI_LIMIT {
        match find_mismatch_exhaustive(a, &va, b, &vb) {
            Some(cex) => EquivResult::NotEquivalent { counterexample: cex },
            None => EquivResult::Equivalent,
        }
    } else {
        match find_mismatch_random(a, &va, b, &vb, random_vectors, seed) {
            Some(cex) => EquivResult::NotEquivalent { counterexample: cex },
            None => EquivResult::ProbablyEquivalent { vectors: random_vectors },
        }
    }
}

fn find_mismatch_exhaustive(
    a: &Netlist,
    va: &CombView,
    b: &Netlist,
    vb: &CombView,
) -> Option<Vec<bool>> {
    let n = va.pis.len();
    let total: u64 = 1 << n;
    let mut sim_a = ParallelSim::new(a, va);
    let mut sim_b = ParallelSim::new(b, vb);
    let mut base = 0u64;
    while base < total {
        let lanes: Vec<u64> = (0..n)
            .map(|i| {
                let mut w = 0u64;
                for k in 0..64u64 {
                    if ((base + k) >> i) & 1 == 1 {
                        w |= 1 << k;
                    }
                }
                w
            })
            .collect();
        sim_a.simulate(&lanes);
        sim_b.simulate(&lanes);
        let mut diff = 0u64;
        for (pa, pb) in va.pos.iter().zip(&vb.pos) {
            diff |= sim_a.value(*pa) ^ sim_b.value(*pb);
        }
        if base + 64 > total {
            diff &= (1u64 << (total - base)) - 1;
        }
        if diff != 0 {
            let lane = diff.trailing_zeros() as u64;
            let m = base + lane;
            return Some((0..n).map(|i| (m >> i) & 1 == 1).collect());
        }
        base += 64;
    }
    None
}

fn find_mismatch_random(
    a: &Netlist,
    va: &CombView,
    b: &Netlist,
    vb: &CombView,
    vectors: usize,
    seed: u64,
) -> Option<Vec<bool>> {
    let n = va.pis.len();
    let mut sim_a = ParallelSim::new(a, va);
    let mut sim_b = ParallelSim::new(b, vb);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let words = vectors.div_ceil(64);
    for _ in 0..words {
        let lanes: Vec<u64> = (0..n).map(|_| next()).collect();
        sim_a.simulate(&lanes);
        sim_b.simulate(&lanes);
        let mut diff = 0u64;
        for (pa, pb) in va.pos.iter().zip(&vb.pos) {
            diff |= sim_a.value(*pa) ^ sim_b.value(*pb);
        }
        if diff != 0 {
            let lane = diff.trailing_zeros() as usize;
            return Some((0..n).map(|i| (lanes[i] >> lane) & 1 == 1).collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapOptions;
    use crate::Window;
    use rsyn_netlist::Library;

    fn xor_pair() -> (Netlist, Netlist) {
        let lib = Library::osu018();
        // a: direct XOR cell.
        let mut a = Netlist::new("a", lib.clone());
        let x = a.add_input("x");
        let y = a.add_input("y");
        let z = a.add_named_net("z");
        let xor = lib.cell_id("XOR2X1").unwrap();
        a.add_gate("g", xor, &[x, y], &[z]).unwrap();
        a.mark_output(z);
        // b: the same circuit remapped without XOR cells.
        let mut b = a.clone();
        let gates: Vec<_> = b.gates().map(|(id, _)| id).collect();
        let w = Window::extract(&b, &gates);
        let allowed: Vec<_> = lib
            .comb_cells()
            .into_iter()
            .filter(|&c| lib.cell(c).name != "XOR2X1" && lib.cell(c).name != "XNOR2X1")
            .collect();
        w.resynthesize(&mut b, &allowed, &MapOptions::area()).unwrap();
        (a, b)
    }

    #[test]
    fn remapped_circuit_is_equivalent() {
        let (a, b) = xor_pair();
        assert_eq!(check_equivalence(&a, &b, 0, 0), EquivResult::Equivalent);
    }

    #[test]
    fn mutated_circuit_is_caught_with_counterexample() {
        let (a, _) = xor_pair();
        let lib = Library::osu018();
        // c computes NAND instead of XOR.
        let mut c = Netlist::new("c", lib.clone());
        let x = c.add_input("x");
        let y = c.add_input("y");
        let z = c.add_named_net("z");
        let nand = lib.cell_id("NAND2X1").unwrap();
        c.add_gate("g", nand, &[x, y], &[z]).unwrap();
        c.mark_output(z);
        match check_equivalence(&a, &c, 0, 0) {
            EquivResult::NotEquivalent { counterexample } => {
                // Verify the counterexample really distinguishes.
                let va = a.comb_view().unwrap();
                let vc = c.comb_view().unwrap();
                let oa = rsyn_netlist::sim::simulate_one(&a, &va, &counterexample);
                let oc = rsyn_netlist::sim::simulate_one(&c, &vc, &counterexample);
                assert_ne!(oa, oc);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_detected() {
        let (a, _) = xor_pair();
        let lib = Library::osu018();
        let mut d = Netlist::new("d", lib.clone());
        let x = d.add_input("x");
        let z = d.add_named_net("z");
        let inv = lib.cell_id("INVX1").unwrap();
        d.add_gate("g", inv, &[x], &[z]).unwrap();
        d.mark_output(z);
        assert_eq!(check_equivalence(&a, &d, 0, 0), EquivResult::InterfaceMismatch);
    }
}
