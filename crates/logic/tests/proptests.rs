//! Property-based tests for the synthesis substrate: AIG algebra, window
//! extraction/restitch equivalence, and restricted-mapping correctness.

use proptest::prelude::*;
use rsyn_logic::aig::{Aig, Lit};
use rsyn_logic::map::MapOptions;
use rsyn_logic::{Mapper, Window};
use rsyn_netlist::{sim::simulate_one, Library, NetId, Netlist, TruthTable};

fn random_netlist(seed: u64, gates: usize) -> Netlist {
    let lib = Library::osu018();
    let mut nl = Netlist::new("rnd", lib.clone());
    let mut nets: Vec<NetId> = (0..6).map(|i| nl.add_input(format!("i{i}"))).collect();
    let names = ["NAND2X1", "NOR2X1", "XOR2X1", "AOI22X1", "OAI21X1", "MUX2X1"];
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for k in 0..gates {
        let cell = lib.cell_id(names[(next() % names.len() as u64) as usize]).unwrap();
        let c = lib.cell(cell);
        let ins: Vec<NetId> =
            (0..c.input_count()).map(|_| nets[(next() % nets.len() as u64) as usize]).collect();
        let out = nl.add_net();
        nl.add_gate(format!("g{k}"), cell, &ins, &[out]).unwrap();
        nets.push(out);
    }
    for &n in nets.iter().rev().take(3) {
        nl.mark_output(n);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The AIG's and/or/xor/mux builders satisfy boolean identities under
    /// simulation.
    #[test]
    fn aig_identities(a_val in any::<u64>(), b_val in any::<u64>(), c_val in any::<u64>()) {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let and_ab = g.and(a, b);
        let or_ab = g.or(a, b);
        let xor_ab = g.xor(a, b);
        let mux = g.mux(c, a, b);
        // De Morgan inside the strash: !(a&b) == (!a | !b)
        let demorgan = g.or(!a, !b);
        let vals = g.simulate(&[a_val, b_val, c_val]);
        let v = |l: Lit| Aig::lit_value(l, &vals);
        prop_assert_eq!(v(and_ab), a_val & b_val);
        prop_assert_eq!(v(or_ab), a_val | b_val);
        prop_assert_eq!(v(xor_ab), a_val ^ b_val);
        prop_assert_eq!(v(mux), (c_val & a_val) | (!c_val & b_val));
        prop_assert_eq!(v(!and_ab), v(demorgan));
    }

    /// `build_function` then `simulate` reproduces any 4-input truth table.
    #[test]
    fn build_function_total(bits in 0u64..=0xFFFF) {
        let tt = TruthTable::new(4, bits);
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..4).map(|_| g.add_pi()).collect();
        let y = g.build_function(tt, &pis);
        let vals = g.simulate(&[0xAAAA, 0xCCCC, 0xF0F0, 0xFF00]);
        prop_assert_eq!(Aig::lit_value(y, &vals) & 0xFFFF, tt.bits());
    }

    /// Resynthesizing a random window of a random netlist preserves the
    /// whole-circuit function, for both the full and a restricted library.
    #[test]
    fn window_resynthesis_equivalence(seed in 0u64..60, restricted in any::<bool>()) {
        let nl = random_netlist(seed, 18);
        nl.validate().unwrap();
        let lib = nl.lib().clone();
        let mapper = Mapper::new(&lib);
        // Pick a pseudo-random half of the gates as the window.
        let window_gates: Vec<_> = nl
            .gates()
            .map(|(id, _)| id)
            .enumerate()
            .filter(|(k, _)| (seed >> (k % 48)) & 1 == 0)
            .map(|(_, id)| id)
            .collect();
        if window_gates.is_empty() {
            return Ok(());
        }
        let allowed: Vec<_> = if restricted {
            lib.comb_cells()
                .into_iter()
                .filter(|&c| {
                    let n = &lib.cell(c).name;
                    n != "XOR2X1" && n != "XNOR2X1" && n != "MUX2X1" && n != "FAX1" && n != "AOI22X1"
                })
                .collect()
        } else {
            lib.comb_cells()
        };
        let mut resyn = nl.clone();
        let w = Window::extract(&resyn, &window_gates);
        w.resynthesize_with(&mut resyn, &mapper, &allowed, &MapOptions::area()).unwrap();
        resyn.validate().unwrap();
        if restricted {
            for (_, g) in resyn.gates() {
                let name = &lib.cell(g.cell).name;
                // Untouched gates may keep banned types; new gates (named
                // rs*) must not.
                if g.name.starts_with("rs") {
                    prop_assert!(
                        !["XOR2X1", "XNOR2X1", "MUX2X1", "FAX1", "AOI22X1"].contains(&name.as_str()),
                        "banned cell {} in replacement",
                        name
                    );
                }
            }
        }
        let va = nl.comb_view().unwrap();
        let vb = resyn.comb_view().unwrap();
        let mut state = seed.wrapping_mul(0xABCD_EF12) | 1;
        for _ in 0..24 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pis: Vec<bool> = (0..va.pis.len()).map(|i| (state >> (i % 61)) & 1 == 1).collect();
            prop_assert_eq!(simulate_one(&nl, &va, &pis), simulate_one(&resyn, &vb, &pis));
        }
    }
}
