//! Property-based tests for the physical-design substrate: placement
//! legality, routing connectivity, and timing-graph invariants.

use proptest::prelude::*;
use rsyn_netlist::{Library, NetId, Netlist};
use rsyn_pdesign::floorplan::Floorplan;
use rsyn_pdesign::flow::physical_design;
use rsyn_pdesign::place::Placement;
use rsyn_pdesign::route::route;

fn random_netlist(seed: u64, gates: usize) -> Netlist {
    let lib = Library::osu018();
    let mut nl = Netlist::new("rnd", lib.clone());
    let mut nets: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
    let names = ["INVX1", "NAND2X1", "NOR2X1", "AOI21X1", "FAX1", "MUX2X1"];
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for k in 0..gates {
        let cell = lib.cell_id(names[(next() % names.len() as u64) as usize]).unwrap();
        let c = lib.cell(cell);
        let ins: Vec<NetId> =
            (0..c.input_count()).map(|_| nets[(next() % nets.len() as u64) as usize]).collect();
        let outs: Vec<NetId> = (0..c.output_count()).map(|_| nl.add_net()).collect();
        nl.add_gate(format!("g{k}"), cell, &ins, &outs).unwrap();
        nets.extend(outs);
    }
    for &n in nets.iter().rev().take(3) {
        nl.mark_output(n);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Global placement never overlaps cells and never leaves the die.
    #[test]
    fn placement_is_legal(seed in 0u64..100, gates in 10usize..60) {
        let nl = random_netlist(seed, gates);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, seed).unwrap();
        let mut occ = vec![vec![false; fp.sites_per_row]; fp.rows];
        for (id, _) in nl.gates() {
            let s = p.slot(id).expect("placed");
            prop_assert!((s.row as usize) < fp.rows);
            prop_assert!((s.site + s.width) as usize <= fp.sites_per_row);
            for x in s.site..s.site + s.width {
                prop_assert!(!occ[s.row as usize][x as usize], "overlap");
                occ[s.row as usize][x as usize] = true;
            }
        }
    }

    /// Every multi-pin, non-constant net gets a route, and every route's
    /// segments are axis-aligned with positive total length bounded by the
    /// die perimeter times the pin count.
    #[test]
    fn routing_covers_all_nets(seed in 0u64..100) {
        let nl = random_netlist(seed, 30);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, seed).unwrap();
        let layout = route(&nl, &p);
        for (id, net) in nl.nets() {
            let driven = matches!(net.driver, Some(rsyn_netlist::Driver::Gate(..) | rsyn_netlist::Driver::Input));
            let pins = net.loads.len() + usize::from(driven);
            let routed = layout.nets.iter().any(|r| r.net == id);
            if driven && pins >= 2 {
                prop_assert!(routed, "net {} unrouted", id);
            }
        }
        for rn in &layout.nets {
            let bound = (fp.width_um() + fp.height_um()) * (nl.net(rn.net).loads.len() + 2) as f64;
            prop_assert!(rn.wirelength() <= bound, "net {} suspiciously long", rn.net);
        }
    }

    /// Timing invariants: arrivals are monotone along gate edges, slack on
    /// the critical endpoint is zero, and no net has negative slack.
    #[test]
    fn timing_graph_invariants(seed in 0u64..100) {
        let nl = random_netlist(seed, 40);
        let pd = physical_design(&nl, seed).unwrap();
        let t = &pd.timing;
        let view = nl.comb_view().unwrap();
        for &gid in &view.order {
            let gate = nl.gate(gid).unwrap();
            let in_max = gate.inputs.iter().map(|&n| t.arrival(n)).fold(0.0, f64::max);
            for &o in &gate.outputs {
                prop_assert!(t.arrival(o) > in_max, "gate output earlier than inputs");
            }
        }
        if let Some(end) = t.critical_endpoint {
            prop_assert!(t.slack(end).abs() < 1e-6, "critical endpoint slack {}", t.slack(end));
        }
        for (id, net) in nl.nets() {
            if net.driver.is_some() {
                prop_assert!(t.slack(id) > -1e-6, "negative slack on {}", id);
            }
        }
    }

    /// Incremental re-placement after removing and re-adding gates keeps
    /// legality and never moves surviving gates.
    #[test]
    fn incremental_placement_stability(seed in 0u64..60) {
        let mut nl = random_netlist(seed, 30);
        let fp = Floorplan::for_cell_area(nl.total_area() * 1.4, 0.7);
        let mut p = Placement::global(&nl, fp, seed).unwrap();
        let victims: Vec<_> = nl.gates().map(|(id, _)| id).take(4).collect();
        let survivors: Vec<_> = nl.gates().map(|(id, _)| id).skip(4).collect();
        let before: Vec<_> = survivors.iter().map(|&g| p.slot(g)).collect();
        let lib = nl.lib().clone();
        let inv = lib.cell_id("INVX1").unwrap();
        for (k, g) in victims.into_iter().enumerate() {
            let gate = nl.gate(g).unwrap().clone();
            nl.remove_gate(g);
            for (j, &o) in gate.outputs.iter().enumerate() {
                nl.add_gate(format!("r{k}_{j}"), inv, &[gate.inputs[0]], &[o]).unwrap();
            }
        }
        p.sync(&nl).unwrap();
        for (g, slot) in survivors.iter().zip(before) {
            prop_assert_eq!(p.slot(*g), slot, "survivor moved");
        }
        // Legality after sync.
        let mut occ = vec![vec![false; fp.sites_per_row]; fp.rows];
        for (id, _) in nl.gates() {
            let s = p.slot(id).expect("placed");
            for x in s.site..s.site + s.width {
                prop_assert!(!occ[s.row as usize][x as usize], "overlap after sync");
                occ[s.row as usize][x as usize] = true;
            }
        }
    }
}
