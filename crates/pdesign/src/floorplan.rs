//! Row-based floorplans.
//!
//! The paper fixes the die area of the original design (70% core
//! utilization) and requires every resynthesized layout to fit the same
//! floorplan. A [`Floorplan`] is therefore computed once from the original
//! netlist's cell area and reused unchanged across resynthesis iterations.

/// Placement site width in µm (one unit of cell width).
pub const SITE_WIDTH_UM: f64 = 2.4;
/// Standard-cell row height in µm.
pub const ROW_HEIGHT_UM: f64 = 10.0;

/// A fixed row-based floorplan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Floorplan {
    /// Number of placement rows.
    pub rows: usize,
    /// Number of sites per row.
    pub sites_per_row: usize,
    /// Core utilization target the floorplan was sized for.
    pub utilization: f64,
}

impl Floorplan {
    /// Sizes a near-square floorplan for the given total standard-cell area
    /// at the given core utilization.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or `cell_area_um2 <= 0`.
    pub fn for_cell_area(cell_area_um2: f64, utilization: f64) -> Self {
        assert!(utilization > 0.0 && utilization <= 1.0, "utilization must be in (0,1]");
        assert!(cell_area_um2 > 0.0, "cell area must be positive");
        let core_area = cell_area_um2 / utilization;
        let side = core_area.sqrt();
        let rows = (side / ROW_HEIGHT_UM).ceil().max(1.0) as usize;
        // Re-balance width so rows × width covers the core area.
        let width = core_area / (rows as f64 * ROW_HEIGHT_UM);
        let sites_per_row = (width / SITE_WIDTH_UM).ceil().max(1.0) as usize;
        Self { rows, sites_per_row, utilization }
    }

    /// Die width in µm.
    pub fn width_um(&self) -> f64 {
        self.sites_per_row as f64 * SITE_WIDTH_UM
    }

    /// Die height in µm.
    pub fn height_um(&self) -> f64 {
        self.rows as f64 * ROW_HEIGHT_UM
    }

    /// Total placement capacity in sites.
    pub fn capacity_sites(&self) -> usize {
        self.rows * self.sites_per_row
    }

    /// Center coordinates of a site, in µm.
    pub fn site_center(&self, row: usize, site: usize) -> (f64, f64) {
        (
            site as f64 * SITE_WIDTH_UM + SITE_WIDTH_UM / 2.0,
            row as f64 * ROW_HEIGHT_UM + ROW_HEIGHT_UM / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floorplan_covers_requested_area() {
        let fp = Floorplan::for_cell_area(7000.0, 0.7);
        let core = fp.width_um() * fp.height_um();
        assert!(core >= 7000.0 / 0.7 * 0.99, "core {core} too small");
        // Near-square: aspect ratio within 2x.
        let ar = fp.width_um() / fp.height_um();
        assert!(ar > 0.5 && ar < 2.0, "aspect ratio {ar}");
    }

    #[test]
    fn capacity_scales_with_area() {
        let small = Floorplan::for_cell_area(1000.0, 0.7);
        let big = Floorplan::for_cell_area(10000.0, 0.7);
        assert!(big.capacity_sites() > small.capacity_sites() * 5);
    }

    #[test]
    fn site_centers_are_inside_die() {
        let fp = Floorplan::for_cell_area(5000.0, 0.7);
        let (x, y) = fp.site_center(fp.rows - 1, fp.sites_per_row - 1);
        assert!(x < fp.width_um() && y < fp.height_um());
        let (x0, y0) = fp.site_center(0, 0);
        assert!(x0 > 0.0 && y0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_panics() {
        let _ = Floorplan::for_cell_area(100.0, 0.0);
    }
}
