//! The layout database: placed cells, routed nets, vias, and density —
//! the geometry the DFM guideline scanner inspects.

use rsyn_netlist::{CellId, GateId, NetId};

use crate::floorplan::Floorplan;

/// Routing layer. `M1` is the in-cell/pin layer, `M2` routes horizontally,
/// `M3` vertically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Pin/landing layer.
    M1,
    /// Horizontal routing layer.
    M2,
    /// Vertical routing layer.
    M3,
}

/// A point in µm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// X coordinate (µm).
    pub x: f64,
    /// Y coordinate (µm).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another point.
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// An axis-aligned wire segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Routing layer.
    pub layer: Layer,
    /// Start point (min coordinate along the axis).
    pub a: Point,
    /// End point.
    pub b: Point,
    /// Owning net.
    pub net: NetId,
}

impl Segment {
    /// Segment length in µm.
    pub fn length(&self) -> f64 {
        self.a.manhattan(&self.b)
    }

    /// True for horizontal segments.
    pub fn is_horizontal(&self) -> bool {
        (self.a.y - self.b.y).abs() < 1e-9
    }
}

/// A via connecting two layers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Via {
    /// Location.
    pub at: Point,
    /// Lower layer.
    pub from: Layer,
    /// Upper layer.
    pub to: Layer,
    /// Owning net.
    pub net: NetId,
}

/// A placed standard cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacedCell {
    /// The gate instance.
    pub gate: GateId,
    /// The library cell.
    pub cell: CellId,
    /// Lower-left x (µm).
    pub x: f64,
    /// Lower-left y (µm).
    pub y: f64,
    /// Width (µm).
    pub w: f64,
    /// Height (µm).
    pub h: f64,
}

/// One routed net.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedNet {
    /// The net.
    pub net: NetId,
    /// Wire segments.
    pub segments: Vec<Segment>,
    /// Vias.
    pub vias: Vec<Via>,
}

impl RoutedNet {
    /// Total routed wirelength in µm.
    pub fn wirelength(&self) -> f64 {
        self.segments.iter().map(Segment::length).sum()
    }
}

/// A complete layout.
#[derive(Clone, Debug)]
pub struct Layout {
    /// The fixed floorplan.
    pub floorplan: Floorplan,
    /// Placed cells.
    pub cells: Vec<PlacedCell>,
    /// Routed nets.
    pub nets: Vec<RoutedNet>,
}

impl Layout {
    /// Total wirelength in µm.
    pub fn total_wirelength(&self) -> f64 {
        self.nets.iter().map(RoutedNet::wirelength).sum()
    }

    /// Total via count.
    pub fn total_vias(&self) -> usize {
        self.nets.iter().map(|n| n.vias.len()).sum()
    }

    /// Routed wirelength of one net in µm (0 if unrouted).
    pub fn net_wirelength(&self, net: NetId) -> f64 {
        self.nets.iter().find(|r| r.net == net).map(RoutedNet::wirelength).unwrap_or(0.0)
    }

    /// Metal density map: fraction of each `window_um`-sized square window
    /// covered by routed metal (wire width `0.3 µm` assumed), row-major
    /// `[y][x]`.
    pub fn density_map(&self, window_um: f64) -> Vec<Vec<f64>> {
        const WIRE_WIDTH_UM: f64 = 0.3;
        let nx = (self.floorplan.width_um() / window_um).ceil().max(1.0) as usize;
        let ny = (self.floorplan.height_um() / window_um).ceil().max(1.0) as usize;
        let mut len = vec![vec![0.0f64; nx]; ny];
        for rn in &self.nets {
            for seg in &rn.segments {
                // Walk the segment across windows.
                let steps = (seg.length() / (window_um / 4.0)).ceil().max(1.0) as usize;
                let dl = seg.length() / steps as f64;
                for s in 0..steps {
                    let t = (s as f64 + 0.5) / steps as f64;
                    let x = seg.a.x + (seg.b.x - seg.a.x) * t;
                    let y = seg.a.y + (seg.b.y - seg.a.y) * t;
                    let ix = ((x / window_um) as usize).min(nx - 1);
                    let iy = ((y / window_um) as usize).min(ny - 1);
                    len[iy][ix] += dl;
                }
            }
        }
        let window_area = window_um * window_um;
        len.iter()
            .map(|row| row.iter().map(|l| (l * WIRE_WIDTH_UM / window_area).min(1.0)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_geometry() {
        let s = Segment {
            layer: Layer::M2,
            a: Point::new(0.0, 5.0),
            b: Point::new(10.0, 5.0),
            net: NetId(0),
        };
        assert!((s.length() - 10.0).abs() < 1e-9);
        assert!(s.is_horizontal());
    }

    #[test]
    fn density_map_counts_metal() {
        let fp = Floorplan::for_cell_area(2000.0, 0.7);
        let net = NetId(0);
        let layout = Layout {
            floorplan: fp,
            cells: vec![],
            nets: vec![RoutedNet {
                net,
                segments: vec![Segment {
                    layer: Layer::M2,
                    a: Point::new(0.0, 1.0),
                    b: Point::new(20.0, 1.0),
                    net,
                }],
                vias: vec![],
            }],
        };
        let map = layout.density_map(24.0);
        assert!(map[0][0] > 0.0, "window with wire has density");
        let total: f64 = map.iter().flatten().sum();
        assert!(total > 0.0);
        assert!((layout.total_wirelength() - 20.0).abs() < 1e-9);
    }
}
