//! Physical design for the `rsyn` DFM-resynthesis system.
//!
//! The paper calls this `PDesign()`: after (re)synthesis the circuit is
//! placed and routed inside a **fixed floorplan** (die area never grows),
//! and the resulting layout geometry drives the DFM guideline scan, static
//! timing, and power estimation. This crate implements a deterministic,
//! laptop-scale version of that flow:
//!
//! * [`floorplan`] — row-based floorplan sized at 70% core utilization;
//! * [`place`] — topological seeding plus seeded simulated-annealing
//!   refinement, with incremental re-placement for resynthesized windows;
//! * [`route`] — a two-layer (horizontal/vertical) trunk router with via
//!   insertion and per-gcell congestion tracking;
//! * [`layout`] — the geometric database consumed by the DFM scanner;
//! * [`timing`] — topological static timing with load-dependent delays;
//! * [`power`] — activity-based dynamic power plus leakage.
//!
//! # Example
//!
//! ```
//! use rsyn_netlist::{Library, Netlist};
//! use rsyn_pdesign::flow::physical_design;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::osu018();
//! let mut nl = Netlist::new("t", lib.clone());
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_named_net("y");
//! let nand = lib.cell_id("NAND2X1").unwrap();
//! nl.add_gate("u0", nand, &[a, b], &[y])?;
//! nl.mark_output(y);
//! let pd = physical_design(&nl, 0xDA7E)?;
//! assert!(pd.timing.critical_delay_ps > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used)]

pub mod floorplan;
pub mod flow;
pub mod layout;
pub mod place;
pub mod power;
pub mod route;
pub mod timing;

pub use floorplan::Floorplan;
pub use flow::{physical_design, PhysicalDesign};
pub use layout::{Layer, Layout, PlacedCell, Point, RoutedNet, Segment, Via};
pub use place::{PlaceError, Placement};
pub use power::PowerReport;
pub use timing::TimingReport;
