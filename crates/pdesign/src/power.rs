//! Power estimation: activity-based dynamic power plus cell leakage.
//!
//! Switching activity is measured by seeded random-vector simulation of the
//! combinational view (each 64-lane word interpreted as a time sequence;
//! four words ride per 256-lane simulation call), which is the standard
//! vectorless-adjacent approach. The absolute numbers use nominal
//! 1.8 V / 100 MHz scaling; the paper only ever uses power *relative* to
//! the original design.

use rsyn_netlist::{sim::ParallelSim, CombView, LaneBlock, Netlist, LANE_WORDS};

use crate::layout::Layout;
use crate::timing::net_load_ff;

/// Supply voltage (V) for energy scaling.
pub const VDD: f64 = 1.8;
/// Clock frequency (Hz) for power scaling.
pub const FREQ_HZ: f64 = 100.0e6;
/// Number of 64-lane random words simulated.
const ACTIVITY_WORDS: usize = 8;

/// A power estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReport {
    /// Dynamic (switching) power in µW.
    pub dynamic_uw: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
}

impl PowerReport {
    /// Total power in µW.
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.leakage_uw
    }
}

/// Simple xorshift for reproducible activity vectors (independent of the
/// `rand` crate's stability guarantees).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Estimates power.
pub fn estimate(nl: &Netlist, view: &CombView, layout: &Layout, seed: u64) -> PowerReport {
    let mut state = seed | 1;
    let mut toggles = vec![0u64; nl.net_count()];
    let mut sim: ParallelSim<LaneBlock> = ParallelSim::new(nl, view);
    let mut total_transitions = 0u64;
    let mut remaining = ACTIVITY_WORDS;
    while remaining > 0 {
        // Word-major draws keep the xorshift stream — and therefore the
        // reported power — byte-identical to the one-word-per-call loop;
        // each word is its own 64-cycle time sequence.
        let nw = remaining.min(LANE_WORDS);
        remaining -= nw;
        let mut pi_vals = vec![LaneBlock::ZERO; view.pis.len()];
        for j in 0..nw {
            for v in pi_vals.iter_mut() {
                v.set_word(j, xorshift(&mut state));
            }
        }
        sim.simulate(&pi_vals);
        for (i, t) in toggles.iter_mut().enumerate() {
            for j in 0..nw {
                let v = sim.values()[i].word(j);
                *t += (v ^ (v << 1)).count_ones() as u64 - u64::from(v & 1 == 1);
            }
        }
        total_transitions += 63 * nw as u64;
    }
    let total_transitions = total_transitions.max(1) as f64;

    // Dynamic: per net, alpha * C * V^2 * f (plus per-gate internal energy).
    let mut dynamic_w = 0.0f64;
    for (id, net) in nl.nets() {
        if net.driver.is_none() {
            continue;
        }
        let alpha = toggles[id.index()] as f64 / total_transitions;
        let cap_f = net_load_ff(nl, layout, id) * 1e-15;
        dynamic_w += alpha * cap_f * VDD * VDD * FREQ_HZ;
    }
    // Cell-internal power: the internal nodes of a cell switch with every
    // *input* toggle (including transitions that never reach the output),
    // and the energy per event scales with the transistor network size.
    // This is why complex pass-gate cells (XOR/MUX/FA) are power-inefficient
    // per function compared to a handful of simple static gates.
    for (_, gate) in nl.gates() {
        let cell = nl.lib().cell(gate.cell);
        for &i in &gate.inputs {
            let alpha = toggles[i.index()] as f64 / total_transitions;
            dynamic_w += alpha * cell.switch_energy * 1e-15 * FREQ_HZ;
        }
    }

    let leakage_nw: f64 = nl.gates().map(|(_, g)| nl.lib().cell(g.cell).leakage).sum();
    PowerReport { dynamic_uw: dynamic_w * 1e6, leakage_uw: leakage_nw * 1e-3 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::place::Placement;
    use crate::route::route;
    use rsyn_netlist::Library;

    fn power_of_chain(n: usize) -> PowerReport {
        let lib = Library::osu018();
        let mut nl = Netlist::new("c", lib.clone());
        let mut prev = nl.add_input("a");
        let inv = lib.cell_id("INVX1").unwrap();
        for i in 0..n {
            let next = nl.add_net();
            nl.add_gate(format!("g{i}"), inv, &[prev], &[next]).unwrap();
            prev = next;
        }
        nl.mark_output(prev);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 1).unwrap();
        let layout = route(&nl, &p);
        let view = nl.comb_view().unwrap();
        estimate(&nl, &view, &layout, 42)
    }

    #[test]
    fn bigger_circuits_burn_more_power() {
        let p5 = power_of_chain(5);
        let p40 = power_of_chain(40);
        assert!(p40.total_uw() > p5.total_uw() * 3.0);
        assert!(p40.leakage_uw > p5.leakage_uw * 5.0);
    }

    #[test]
    fn power_is_deterministic_for_a_seed() {
        let a = power_of_chain(10);
        let b = power_of_chain(10);
        assert_eq!(a, b);
    }

    #[test]
    fn inverter_chain_has_high_activity() {
        // Every net in an inverter chain toggles when the input toggles, so
        // dynamic power must dominate leakage at 100 MHz.
        let p = power_of_chain(20);
        assert!(p.dynamic_uw > 0.0);
        assert!(p.dynamic_uw > p.leakage_uw);
    }
}
