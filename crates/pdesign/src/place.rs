//! Placement: topological seeding, seeded local refinement, and incremental
//! re-placement for resynthesized windows inside the fixed floorplan.

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsyn_netlist::{Driver, GateId, NetId, Netlist};

use crate::floorplan::{Floorplan, ROW_HEIGHT_UM, SITE_WIDTH_UM};

/// Placement failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlaceError {
    /// The cells do not fit the fixed floorplan (die area is a hard
    /// constraint in the paper).
    AreaExceeded {
        /// Sites required by the unplaced gates.
        needed_sites: usize,
        /// Free sites remaining.
        free_sites: usize,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::AreaExceeded { needed_sites, free_sites } => write!(
                f,
                "placement needs {needed_sites} sites but only {free_sites} remain in the fixed floorplan"
            ),
        }
    }
}

impl Error for PlaceError {}

/// A (row, site, width) slot for one gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Placement row.
    pub row: u32,
    /// First site occupied.
    pub site: u32,
    /// Width in sites.
    pub width: u32,
}

/// A placement of a netlist into a floorplan.
#[derive(Clone, Debug)]
pub struct Placement {
    fp: Floorplan,
    /// Indexed by gate arena index.
    slots: Vec<Option<Slot>>,
}

fn gate_width_sites(nl: &Netlist, g: GateId) -> u32 {
    let cell = nl.lib().cell(nl.gate(g).expect("live gate").cell);
    (cell.area / (SITE_WIDTH_UM * ROW_HEIGHT_UM)).round().max(1.0) as u32
}

impl Placement {
    /// Performs global placement of all gates of `nl` into `fp`.
    ///
    /// Gates are seeded in combinational topological order (which keeps
    /// connected gates close) and refined by seeded random swap moves that
    /// accept wirelength improvements.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::AreaExceeded`] if the netlist does not fit.
    pub fn global(nl: &Netlist, fp: Floorplan, seed: u64) -> Result<Self, PlaceError> {
        let mut placement = Self { fp, slots: vec![None; nl.gate_capacity()] };
        // Topological order (combinational), then flops.
        let view = nl.comb_view().expect("acyclic netlist");
        let mut order: Vec<GateId> = view.order.clone();
        order.extend(nl.flops());
        placement.seed_rows(nl, &order)?;
        placement.refine(nl, seed, 4 * order.len());
        Ok(placement)
    }

    /// Creates an empty placement for incremental use.
    pub fn empty(fp: Floorplan, gate_capacity: usize) -> Self {
        Self { fp, slots: vec![None; gate_capacity] }
    }

    /// The floorplan.
    pub fn floorplan(&self) -> Floorplan {
        self.fp
    }

    /// The slot of a gate, if placed.
    pub fn slot(&self, g: GateId) -> Option<Slot> {
        self.slots.get(g.index()).copied().flatten()
    }

    /// Center coordinates (µm) of a placed gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not placed.
    pub fn gate_center(&self, g: GateId) -> (f64, f64) {
        let s = self.slot(g).expect("gate is placed");
        (
            (s.site as f64 + s.width as f64 / 2.0) * SITE_WIDTH_UM,
            s.row as f64 * ROW_HEIGHT_UM + ROW_HEIGHT_UM / 2.0,
        )
    }

    fn seed_rows(&mut self, nl: &Netlist, order: &[GateId]) -> Result<(), PlaceError> {
        // Spread free space evenly across rows (each row is filled only up
        // to its share of the total cell area) so that incremental
        // re-placement after resynthesis finds gaps *near* the replaced
        // logic instead of at the die edge.
        let total: usize = order.iter().map(|&g| gate_width_sites(nl, g) as usize).sum();
        let per_row = (total.div_ceil(self.fp.rows.max(1))).min(self.fp.sites_per_row);
        let mut row = 0usize;
        let mut site = 0usize;
        let mut reverse = false;
        for &g in order {
            let w = gate_width_sites(nl, g) as usize;
            if site + w > self.fp.sites_per_row || (site >= per_row && row + 1 < self.fp.rows) {
                row += 1;
                site = 0;
                reverse = !reverse;
                if row >= self.fp.rows {
                    let needed: usize = order
                        .iter()
                        .filter(|&&g| self.slots[g.index()].is_none())
                        .map(|&g| gate_width_sites(nl, g) as usize)
                        .sum();
                    return Err(PlaceError::AreaExceeded { needed_sites: needed, free_sites: 0 });
                }
            }
            // Boustrophedon: odd rows fill right-to-left for locality.
            let start = if reverse { self.fp.sites_per_row - site - w } else { site };
            self.slots[g.index()] =
                Some(Slot { row: row as u32, site: start as u32, width: w as u32 });
            site += w;
        }
        Ok(())
    }

    /// Seeded local refinement: random equal-width swaps accepted when the
    /// half-perimeter wirelength of affected nets improves.
    fn refine(&mut self, nl: &Netlist, seed: u64, moves: usize) {
        let live: Vec<GateId> = nl.gates().map(|(id, _)| id).collect();
        if live.len() < 2 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..moves {
            let a = live[rng.gen_range(0..live.len())];
            let b = live[rng.gen_range(0..live.len())];
            if a == b {
                continue;
            }
            let (sa, sb) = match (self.slot(a), self.slot(b)) {
                (Some(sa), Some(sb)) if sa.width == sb.width => (sa, sb),
                _ => continue,
            };
            let nets = affected_nets(nl, a, b);
            let before: f64 = nets.iter().map(|&n| self.net_hpwl(nl, n)).sum();
            self.slots[a.index()] = Some(Slot { row: sb.row, site: sb.site, width: sa.width });
            self.slots[b.index()] = Some(Slot { row: sa.row, site: sa.site, width: sb.width });
            let after: f64 = nets.iter().map(|&n| self.net_hpwl(nl, n)).sum();
            if after > before {
                // revert
                self.slots[a.index()] = Some(sa);
                self.slots[b.index()] = Some(sb);
            }
        }
    }

    /// Half-perimeter wirelength of one net in µm (0 for unplaced/boundary
    /// nets with fewer than two placed pins).
    pub fn net_hpwl(&self, nl: &Netlist, net: NetId) -> f64 {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut pins = 0usize;
        let mut add = |x: f64, y: f64, pins: &mut usize| {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
            *pins += 1;
        };
        if let Some(Driver::Gate(g, _)) = nl.net(net).driver {
            if self.slot(g).is_some() {
                let (x, y) = self.gate_center(g);
                add(x, y, &mut pins);
            }
        }
        for &(g, _) in &nl.net(net).loads {
            if self.slot(g).is_some() {
                let (x, y) = self.gate_center(g);
                add(x, y, &mut pins);
            }
        }
        if pins < 2 {
            return 0.0;
        }
        (max_x - min_x) + (max_y - min_y)
    }

    /// Total half-perimeter wirelength in µm.
    pub fn total_hpwl(&self, nl: &Netlist) -> f64 {
        nl.nets().map(|(id, _)| self.net_hpwl(nl, id)).sum()
    }

    /// Synchronises with the netlist after resynthesis: slots of removed
    /// gates are freed and gates without slots are placed into free gaps
    /// near the centroid of their placed neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::AreaExceeded`] if a new gate does not fit; the
    /// placement is left partially updated (callers snapshot before trying).
    pub fn sync(&mut self, nl: &Netlist) -> Result<(), PlaceError> {
        self.slots.resize(nl.gate_capacity(), None);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_some() && nl.gate(GateId::from_index(i)).is_none() {
                *slot = None;
            }
        }
        // Occupancy grid.
        let mut occ = vec![vec![false; self.fp.sites_per_row]; self.fp.rows];
        for slot in self.slots.iter().flatten() {
            for s in slot.site..slot.site + slot.width {
                occ[slot.row as usize][s as usize] = true;
            }
        }
        // Place new gates in topological-ish (id) order.
        let unplaced: Vec<GateId> =
            nl.gates().map(|(id, _)| id).filter(|&id| self.slots[id.index()].is_none()).collect();
        for g in unplaced {
            let w = gate_width_sites(nl, g) as usize;
            let centroid = self.neighbor_centroid(nl, g);
            let slot = self.find_gap(&occ, w, centroid).ok_or_else(|| {
                let free = occ.iter().flatten().filter(|&&o| !o).count();
                PlaceError::AreaExceeded { needed_sites: w, free_sites: free }
            })?;
            for s in slot.site..slot.site + slot.width {
                occ[slot.row as usize][s as usize] = true;
            }
            self.slots[g.index()] = Some(slot);
        }
        Ok(())
    }

    fn neighbor_centroid(&self, nl: &Netlist, g: GateId) -> (f64, f64) {
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut n = 0usize;
        for peer in nl.fanin_gates(g).into_iter().chain(nl.fanout_gates(g)) {
            if self.slot(peer).is_some() {
                let (x, y) = self.gate_center(peer);
                sx += x;
                sy += y;
                n += 1;
            }
        }
        if n == 0 {
            (self.fp.width_um() / 2.0, self.fp.height_um() / 2.0)
        } else {
            (sx / n as f64, sy / n as f64)
        }
    }

    fn find_gap(&self, occ: &[Vec<bool>], width: usize, centroid: (f64, f64)) -> Option<Slot> {
        let mut best: Option<(f64, Slot)> = None;
        for (row, sites) in occ.iter().enumerate() {
            let y = row as f64 * ROW_HEIGHT_UM + ROW_HEIGHT_UM / 2.0;
            let mut run_start = None;
            for s in 0..=sites.len() {
                let free = s < sites.len() && !sites[s];
                match (free, run_start) {
                    (true, None) => run_start = Some(s),
                    (false, Some(start)) => {
                        if s - start >= width {
                            // Position within the run closest to the centroid.
                            let cx_site =
                                (centroid.0 / SITE_WIDTH_UM - width as f64 / 2.0).round() as i64;
                            let lo = start as i64;
                            let hi = (s - width) as i64;
                            let pos = cx_site.clamp(lo, hi) as usize;
                            let x = (pos as f64 + width as f64 / 2.0) * SITE_WIDTH_UM;
                            let cost = (x - centroid.0).abs() + (y - centroid.1).abs();
                            let slot =
                                Slot { row: row as u32, site: pos as u32, width: width as u32 };
                            if best.as_ref().map_or(true, |(c, _)| cost < *c) {
                                best = Some((cost, slot));
                            }
                        }
                        run_start = None;
                    }
                    _ => {}
                }
            }
        }
        best.map(|(_, s)| s)
    }
}

fn affected_nets(nl: &Netlist, a: GateId, b: GateId) -> Vec<NetId> {
    let mut nets = Vec::new();
    for g in [a, b] {
        if let Some(gate) = nl.gate(g) {
            for &n in gate.inputs.iter().chain(gate.outputs.iter()) {
                if !nets.contains(&n) {
                    nets.push(n);
                }
            }
        }
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsyn_netlist::Library;

    fn chain(n: usize) -> Netlist {
        let lib = Library::osu018();
        let mut nl = Netlist::new("chain", lib.clone());
        let mut prev = nl.add_input("a");
        let inv = lib.cell_id("INVX1").unwrap();
        for i in 0..n {
            let next = nl.add_net();
            nl.add_gate(format!("g{i}"), inv, &[prev], &[next]).unwrap();
            prev = next;
        }
        nl.mark_output(prev);
        nl
    }

    #[test]
    fn global_placement_places_all_gates() {
        let nl = chain(50);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 1).unwrap();
        for (id, _) in nl.gates() {
            assert!(p.slot(id).is_some(), "gate {id} unplaced");
        }
    }

    #[test]
    fn no_overlaps_after_refinement() {
        let nl = chain(80);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 7).unwrap();
        let mut occ = vec![vec![false; fp.sites_per_row]; fp.rows];
        for (id, _) in nl.gates() {
            let s = p.slot(id).unwrap();
            for x in s.site..s.site + s.width {
                assert!(!occ[s.row as usize][x as usize], "overlap at ({}, {x})", s.row);
                occ[s.row as usize][x as usize] = true;
            }
        }
    }

    #[test]
    fn refinement_does_not_worsen_hpwl() {
        let nl = chain(60);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        // seed_rows only (no refinement) via a placement we refine manually:
        let view = nl.comb_view().unwrap();
        let order: Vec<GateId> = view.order.clone();
        let mut p0 = Placement::empty(fp, nl.gate_capacity());
        p0.seed_rows(&nl, &order).unwrap();
        let before = p0.total_hpwl(&nl);
        let mut p1 = p0.clone();
        p1.refine(&nl, 3, 500);
        let after = p1.total_hpwl(&nl);
        assert!(after <= before + 1e-9, "refine must not worsen: {before} -> {after}");
    }

    #[test]
    fn area_exceeded_is_reported() {
        let nl = chain(100);
        // Deliberately tiny floorplan.
        let fp = Floorplan::for_cell_area(nl.total_area() / 20.0, 0.7);
        let err = Placement::global(&nl, fp, 1).unwrap_err();
        assert!(matches!(err, PlaceError::AreaExceeded { .. }));
    }

    #[test]
    fn sync_places_new_gates_near_neighbors() {
        let mut nl = chain(30);
        let fp = Floorplan::for_cell_area(nl.total_area() * 1.5, 0.7);
        let mut p = Placement::global(&nl, fp, 1).unwrap();
        // Remove one gate and insert a replacement driving the same net.
        let g10 = nl.find_gate("g10").unwrap();
        let old = nl.gate(g10).unwrap().clone();
        nl.remove_gate(g10);
        let buf = nl.lib().cell_id("BUFX2").unwrap();
        let g_new = nl.add_gate("rep", buf, &[old.inputs[0]], &[old.outputs[0]]).unwrap();
        p.sync(&nl).unwrap();
        assert!(p.slot(g_new).is_some());
        // New gate should sit near its neighbours (same region, within 40 µm).
        let g9 = nl.find_gate("g9").unwrap();
        let (nx, ny) = p.gate_center(g_new);
        let (ox, oy) = p.gate_center(g9);
        assert!((nx - ox).abs() + (ny - oy).abs() < 60.0, "placed too far: {nx},{ny} vs {ox},{oy}");
    }

    #[test]
    fn sync_fails_when_floorplan_is_full() {
        let mut nl = chain(40);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.95);
        let mut p = Placement::global(&nl, fp, 1).unwrap();
        // Add many wide gates without removing anything.
        let fax = nl.lib().cell_id("FAX1").unwrap();
        let a = nl.find_net("a").unwrap();
        let mut err = None;
        for i in 0..40 {
            let s = nl.add_net();
            let c = nl.add_net();
            nl.add_gate(format!("fa{i}"), fax, &[a, a, a], &[s, c]).unwrap();
            if let Err(e) = p.sync(&nl) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(PlaceError::AreaExceeded { .. })));
    }
}
