//! Two-layer trunk routing with track assignment and via insertion.
//!
//! Every multi-pin net is routed as a chain of L-shapes between its pins in
//! x-order: horizontal runs on M2, vertical runs on M3, vias at pins and
//! bends. A post-pass assigns horizontal runs to tracks within each row band
//! and vertical runs to tracks within each column band, producing the real
//! parallel-run adjacency that the DFM *Metal* spacing guidelines inspect —
//! congested regions naturally end up with closely-spaced parallel wires.

use rsyn_netlist::{Driver, NetId, Netlist};

use crate::floorplan::ROW_HEIGHT_UM;
use crate::layout::{Layer, Layout, PlacedCell, Point, RoutedNet, Segment, Via};
use crate::place::Placement;

/// Horizontal tracks per row band.
const H_TRACKS: usize = 12;
/// Horizontal track pitch (µm) within a 10 µm row band.
const H_PITCH_UM: f64 = 0.8;
/// Vertical column band width (µm).
const V_BAND_UM: f64 = 12.0;
/// Vertical tracks per column band.
const V_TRACKS: usize = 12;
/// Vertical track pitch (µm).
const V_PITCH_UM: f64 = 1.0;

/// Routes a placed netlist, producing a [`Layout`].
///
/// # Panics
///
/// Panics if a live gate is unplaced.
pub fn route(nl: &Netlist, placement: &Placement) -> Layout {
    let fp = placement.floorplan();
    let mut cells = Vec::new();
    for (id, gate) in nl.gates() {
        let slot = placement.slot(id).expect("all gates placed before routing");
        cells.push(PlacedCell {
            gate: id,
            cell: gate.cell,
            x: slot.site as f64 * crate::floorplan::SITE_WIDTH_UM,
            y: slot.row as f64 * ROW_HEIGHT_UM,
            w: slot.width as f64 * crate::floorplan::SITE_WIDTH_UM,
            h: ROW_HEIGHT_UM,
        });
    }

    let mut nets = Vec::new();
    for (net_id, net) in nl.nets() {
        if matches!(net.driver, Some(Driver::Const(_)) | None) {
            continue;
        }
        let pins = pin_points(nl, placement, net_id);
        if pins.len() < 2 {
            continue;
        }
        nets.push(route_net(net_id, pins));
    }

    assign_tracks(&mut nets);
    Layout { floorplan: fp, cells, nets }
}

fn pin_points(nl: &Netlist, placement: &Placement, net: NetId) -> Vec<Point> {
    let fp = placement.floorplan();
    let mut pins = Vec::new();
    match nl.net(net).driver {
        Some(Driver::Gate(g, _)) => {
            let (x, y) = placement.gate_center(g);
            pins.push(Point::new(x, y));
        }
        Some(Driver::Input) => {
            // Primary inputs enter at the left edge, spread by index.
            let idx = nl.primary_inputs().iter().position(|&p| p == net).unwrap_or(0);
            let y = edge_spread(idx, nl.primary_inputs().len().max(1), fp.height_um());
            pins.push(Point::new(0.2, y));
        }
        _ => {}
    }
    for &(g, _) in &nl.net(net).loads {
        let (x, y) = placement.gate_center(g);
        pins.push(Point::new(x, y));
    }
    if let Some(idx) = nl.primary_outputs().iter().position(|&p| p == net) {
        let y = edge_spread(idx, nl.primary_outputs().len().max(1), fp.height_um());
        pins.push(Point::new(fp.width_um() - 0.2, y));
    }
    pins
}

fn edge_spread(idx: usize, count: usize, height: f64) -> f64 {
    (idx as f64 + 0.5) / count as f64 * height
}

fn route_net(net: NetId, mut pins: Vec<Point>) -> RoutedNet {
    pins.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    let mut segments = Vec::new();
    let mut vias = Vec::new();
    // Pin landing vias (M1 -> M2).
    for p in &pins {
        vias.push(Via { at: *p, from: Layer::M1, to: Layer::M2, net });
    }
    for w in pins.windows(2) {
        let (p, q) = (w[0], w[1]);
        let dx = (q.x - p.x).abs();
        let dy = (q.y - p.y).abs();
        if dx > 1e-9 {
            segments.push(Segment {
                layer: Layer::M2,
                a: Point::new(p.x.min(q.x), p.y),
                b: Point::new(p.x.max(q.x), p.y),
                net,
            });
        }
        if dy > 1e-9 {
            segments.push(Segment {
                layer: Layer::M3,
                a: Point::new(q.x, p.y.min(q.y)),
                b: Point::new(q.x, p.y.max(q.y)),
                net,
            });
            if dx > 1e-9 {
                // Bend between the horizontal and vertical runs.
                vias.push(Via { at: Point::new(q.x, p.y), from: Layer::M2, to: Layer::M3, net });
            }
            // Vertical run descends back to the pin layer stack.
            vias.push(Via { at: Point::new(q.x, q.y), from: Layer::M2, to: Layer::M3, net });
        }
    }
    RoutedNet { net, segments, vias }
}

/// Assigns horizontal runs to tracks within their row band and vertical runs
/// to tracks within their column band (round-robin in x/y order), spreading
/// parallel wires across real track positions.
fn assign_tracks(nets: &mut [RoutedNet]) {
    // Collect (net index, segment index) per band.
    use std::collections::BTreeMap;
    let mut h_bands: BTreeMap<i64, Vec<(usize, usize)>> = BTreeMap::new();
    let mut v_bands: BTreeMap<i64, Vec<(usize, usize)>> = BTreeMap::new();
    for (ni, rn) in nets.iter().enumerate() {
        for (si, seg) in rn.segments.iter().enumerate() {
            match seg.layer {
                Layer::M2 => {
                    let band = (seg.a.y / ROW_HEIGHT_UM).floor() as i64;
                    h_bands.entry(band).or_default().push((ni, si));
                }
                Layer::M3 => {
                    let band = (seg.a.x / V_BAND_UM).floor() as i64;
                    v_bands.entry(band).or_default().push((ni, si));
                }
                Layer::M1 => {}
            }
        }
    }
    for (band, entries) in h_bands {
        let mut sorted = entries;
        sorted.sort_by(|&(na, sa), &(nb, sb)| {
            nets[na].segments[sa].a.x.total_cmp(&nets[nb].segments[sb].a.x).then(na.cmp(&nb))
        });
        for (k, (ni, si)) in sorted.into_iter().enumerate() {
            let track = k % H_TRACKS;
            let y = band as f64 * ROW_HEIGHT_UM + 0.4 + track as f64 * H_PITCH_UM;
            let seg = &mut nets[ni].segments[si];
            seg.a.y = y;
            seg.b.y = y;
        }
    }
    for (band, entries) in v_bands {
        let mut sorted = entries;
        sorted.sort_by(|&(na, sa), &(nb, sb)| {
            nets[na].segments[sa].a.y.total_cmp(&nets[nb].segments[sb].a.y).then(na.cmp(&nb))
        });
        for (k, (ni, si)) in sorted.into_iter().enumerate() {
            let track = k % V_TRACKS;
            let x = band as f64 * V_BAND_UM + 0.5 + track as f64 * V_PITCH_UM;
            let seg = &mut nets[ni].segments[si];
            seg.a.x = x;
            seg.b.x = x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use rsyn_netlist::Library;

    fn placed_chain(n: usize) -> (Netlist, Placement) {
        let lib = Library::osu018();
        let mut nl = Netlist::new("c", lib.clone());
        let mut prev = nl.add_input("a");
        let inv = lib.cell_id("INVX1").unwrap();
        for i in 0..n {
            let next = nl.add_net();
            nl.add_gate(format!("g{i}"), inv, &[prev], &[next]).unwrap();
            prev = next;
        }
        nl.mark_output(prev);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 1).unwrap();
        (nl, p)
    }

    #[test]
    fn all_multi_pin_nets_are_routed() {
        let (nl, p) = placed_chain(20);
        let layout = route(&nl, &p);
        // chain of 20 inverters: a + 19 internal + output net = 21 nets with >= 2 pins
        assert_eq!(layout.nets.len(), 21);
        assert!(layout.total_wirelength() > 0.0);
        assert!(layout.total_vias() >= 2 * layout.nets.len());
        assert_eq!(layout.cells.len(), 20);
    }

    #[test]
    fn segments_are_axis_aligned() {
        let (nl, p) = placed_chain(30);
        let layout = route(&nl, &p);
        for rn in &layout.nets {
            for s in &rn.segments {
                let h = (s.a.y - s.b.y).abs() < 1e-9;
                let v = (s.a.x - s.b.x).abs() < 1e-9;
                assert!(h || v, "diagonal segment {s:?}");
                match s.layer {
                    Layer::M2 => assert!(h, "M2 must be horizontal"),
                    Layer::M3 => assert!(v, "M3 must be vertical"),
                    Layer::M1 => {}
                }
            }
        }
    }

    #[test]
    fn track_assignment_separates_parallel_wires() {
        let (nl, p) = placed_chain(40);
        let layout = route(&nl, &p);
        // Within a band, horizontal segments must sit on distinct track y's
        // unless the band has more segments than tracks.
        use std::collections::HashMap;
        let mut band_ys: HashMap<i64, Vec<f64>> = HashMap::new();
        for rn in &layout.nets {
            for s in &rn.segments {
                if s.layer == Layer::M2 {
                    band_ys.entry((s.a.y / ROW_HEIGHT_UM).floor() as i64).or_default().push(s.a.y);
                }
            }
        }
        for (band, ys) in band_ys {
            if ys.len() <= H_TRACKS {
                let mut sorted = ys.clone();
                sorted.sort_by(f64::total_cmp);
                for w in sorted.windows(2) {
                    assert!(w[1] - w[0] > H_PITCH_UM * 0.5 - 1e-9, "band {band} tracks too close");
                }
            }
        }
    }

    #[test]
    fn const_nets_are_not_routed() {
        let lib = Library::osu018();
        let mut nl = Netlist::new("c", lib.clone());
        let a = nl.add_input("a");
        let c1 = nl.const1();
        let y = nl.add_named_net("y");
        let nand = lib.cell_id("NAND2X1").unwrap();
        nl.add_gate("g", nand, &[a, c1], &[y]).unwrap();
        nl.mark_output(y);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 1).unwrap();
        let layout = route(&nl, &p);
        assert!(layout.nets.iter().all(|rn| rn.net != c1));
    }
}
