//! `PDesign()`: the complete physical-design step the resynthesis procedure
//! invokes — placement, routing, timing, and power in one call.

use rsyn_netlist::Netlist;
use rsyn_resilience::inject::{self, PdesignFate};

use crate::floorplan::Floorplan;
use crate::layout::Layout;
use crate::place::{PlaceError, Placement};
use crate::power::{estimate, PowerReport};
use crate::route::route;
use crate::timing::{analyze, TimingReport};

/// Core utilization used for the original floorplan, as in the paper.
pub const CORE_UTILIZATION: f64 = 0.7;

/// The artifacts of one physical-design run.
#[derive(Clone, Debug)]
pub struct PhysicalDesign {
    /// Cell placement.
    pub placement: Placement,
    /// Routed layout.
    pub layout: Layout,
    /// Static timing report.
    pub timing: TimingReport,
    /// Power estimate.
    pub power: PowerReport,
}

/// Runs full physical design from scratch: floorplan at 70% utilization,
/// global placement, routing, STA, and power.
///
/// # Errors
///
/// Returns [`PlaceError`] if the netlist does not fit its own floorplan
/// (cannot happen for a fresh floorplan unless rounding is pathological).
pub fn physical_design(nl: &Netlist, seed: u64) -> Result<PhysicalDesign, PlaceError> {
    let fp = Floorplan::for_cell_area(nl.total_area(), CORE_UTILIZATION);
    physical_design_in(nl, fp, None, seed)
}

/// Runs physical design inside a **fixed floorplan**, optionally starting
/// from a previous placement (incremental mode used after resynthesis: only
/// new gates are placed, survivors keep their slots).
///
/// # Errors
///
/// Returns [`PlaceError::AreaExceeded`] if the netlist no longer fits the
/// floorplan — the paper treats this as a hard constraint violation.
///
/// When a `rsyn-resilience` injection plan is armed, this call consults it
/// (keyed by a deterministic call ordinal): the plan can force the
/// rejection of the whole run, or inflate the reported critical delay to
/// manufacture accepted-but-constraint-violating candidates that drive the
/// Section III-C backtracking path.
pub fn physical_design_in(
    nl: &Netlist,
    floorplan: Floorplan,
    previous: Option<&Placement>,
    seed: u64,
) -> Result<PhysicalDesign, PlaceError> {
    let _span = rsyn_observe::span("pdesign");
    let fate = inject::pdesign_fate();
    rsyn_observe::add_many(&[
        ("pdesign.runs", 1),
        if previous.is_some() {
            ("pdesign.placements.incremental", 1)
        } else {
            ("pdesign.placements.global", 1)
        },
    ]);
    if fate == PdesignFate::Reject {
        // An injected rejection mimics the floorplan running out of sites.
        return Err(PlaceError::AreaExceeded { needed_sites: nl.gate_count(), free_sites: 0 });
    }
    let place_span = rsyn_observe::span("pdesign.place");
    let placement = match previous {
        Some(prev) => {
            let mut p = prev.clone();
            p.sync(nl)?;
            p
        }
        None => Placement::global(nl, floorplan, seed)?,
    };
    drop(place_span);
    let layout = {
        let _s = rsyn_observe::span("pdesign.route");
        route(nl, &placement)
    };
    let view = nl.comb_view().expect("acyclic netlist");
    let mut timing = {
        let _s = rsyn_observe::span("pdesign.timing");
        analyze(nl, &view, &layout)
    };
    if let PdesignFate::InflateDelay { percent } = fate {
        timing.critical_delay_ps *= percent as f64 / 100.0;
    }
    let power = {
        let _s = rsyn_observe::span("pdesign.power");
        estimate(nl, &view, &layout, seed ^ 0x9E37_79B9_7F4A_7C15)
    };
    Ok(PhysicalDesign { placement, layout, timing, power })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsyn_netlist::Library;

    fn sample() -> Netlist {
        let lib = Library::osu018();
        let mut nl = Netlist::new("s", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let t = nl.add_net();
        let y = nl.add_named_net("y");
        let nand = lib.cell_id("NAND2X1").unwrap();
        let xor = lib.cell_id("XOR2X1").unwrap();
        nl.add_gate("u0", nand, &[a, b], &[t]).unwrap();
        nl.add_gate("u1", xor, &[t, a], &[y]).unwrap();
        nl.mark_output(y);
        nl
    }

    #[test]
    fn full_flow_produces_consistent_artifacts() {
        let nl = sample();
        let pd = physical_design(&nl, 0xDA7E).unwrap();
        assert_eq!(pd.layout.cells.len(), nl.gate_count());
        assert!(pd.timing.critical_delay_ps > 0.0);
        assert!(pd.power.total_uw() > 0.0);
        assert!(pd.layout.total_wirelength() > 0.0);
    }

    #[test]
    fn incremental_mode_preserves_surviving_slots() {
        let mut nl = sample();
        let pd = physical_design(&nl, 0xDA7E).unwrap();
        let fp = pd.placement.floorplan();
        let u0 = nl.find_gate("u0").unwrap();
        let slot_before = pd.placement.slot(u0).unwrap();
        // Replace u1 with an inverter.
        let u1 = nl.find_gate("u1").unwrap();
        let old = nl.gate(u1).unwrap().clone();
        nl.remove_gate(u1);
        let inv = nl.lib().cell_id("INVX1").unwrap();
        nl.add_gate("r", inv, &[old.inputs[0]], &[old.outputs[0]]).unwrap();
        let pd2 = physical_design_in(&nl, fp, Some(&pd.placement), 0xDA7E).unwrap();
        assert_eq!(pd2.placement.slot(u0).unwrap(), slot_before, "survivor keeps its slot");
    }

    #[test]
    fn injection_rejects_and_inflates_at_exact_ordinals() {
        let nl = sample();
        let clean = physical_design(&nl, 0xDA7E).unwrap();
        let plan = inject::InjectionPlan::new()
            .reject_pdesign(1)
            .inflate_pdesign(2)
            .inflation_percent(250);
        let armed = inject::arm(plan);
        // Ordinal 0: untouched.
        let pd0 = physical_design(&nl, 0xDA7E).unwrap();
        assert_eq!(pd0.timing.critical_delay_ps, clean.timing.critical_delay_ps);
        // Ordinal 1: forced rejection.
        let err = physical_design(&nl, 0xDA7E).unwrap_err();
        assert!(matches!(err, PlaceError::AreaExceeded { free_sites: 0, .. }));
        // Ordinal 2: delay inflated 2.5×, everything else intact.
        let pd2 = physical_design(&nl, 0xDA7E).unwrap();
        assert!((pd2.timing.critical_delay_ps - 2.5 * clean.timing.critical_delay_ps).abs() < 1e-9);
        assert_eq!(pd2.power, clean.power);
        drop(armed);
        let pd3 = physical_design(&nl, 0xDA7E).unwrap();
        assert_eq!(pd3.timing.critical_delay_ps, clean.timing.critical_delay_ps);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let nl = sample();
        let a = physical_design(&nl, 7).unwrap();
        let b = physical_design(&nl, 7).unwrap();
        assert_eq!(a.timing.critical_delay_ps, b.timing.critical_delay_ps);
        assert_eq!(a.power, b.power);
        assert_eq!(a.layout.total_wirelength(), b.layout.total_wirelength());
    }
}
