//! Static timing analysis over the combinational view.
//!
//! Gate delay uses the library's linear model `intrinsic + slope × load`,
//! where the load is the sum of sink pin capacitances plus routed wire
//! capacitance. Flops are cut exactly as in the test view, so the critical
//! path is the longest register-to-register / port-to-port combinational
//! path — the quantity the paper's delay constraint bounds.

use rsyn_netlist::{CombView, NetId, Netlist};

use crate::layout::Layout;

/// Wire capacitance per µm of routed metal (fF/µm).
pub const WIRE_CAP_FF_PER_UM: f64 = 0.1;

/// The result of static timing analysis.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Critical (longest) path delay in ps.
    pub critical_delay_ps: f64,
    /// The endpoint net of the critical path.
    pub critical_endpoint: Option<NetId>,
    /// Arrival time per net (indexed by `NetId`), in ps.
    pub arrivals_ps: Vec<f64>,
    /// Required time per net (indexed by `NetId`), in ps, with the critical
    /// delay as the common deadline — so the critical path has zero slack.
    pub required_ps: Vec<f64>,
}

impl TimingReport {
    /// Arrival time of one net in ps.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrivals_ps[net.index()]
    }

    /// Slack of one net in ps (zero on the critical path).
    pub fn slack(&self, net: NetId) -> f64 {
        self.required_ps[net.index()] - self.arrivals_ps[net.index()]
    }
}

/// Capacitive load on a net in fF: sink pin caps + routed wire cap.
pub fn net_load_ff(nl: &Netlist, layout: &Layout, net: NetId) -> f64 {
    let pin_cap: f64 = nl
        .net(net)
        .loads
        .iter()
        .map(|&(g, _)| nl.lib().cell(nl.gate(g).expect("live").cell).input_cap)
        .sum();
    pin_cap + WIRE_CAP_FF_PER_UM * layout.net_wirelength(net)
}

/// Runs static timing analysis.
pub fn analyze(nl: &Netlist, view: &CombView, layout: &Layout) -> TimingReport {
    let mut arrivals = vec![0.0f64; nl.net_count()];
    for &gid in &view.order {
        let gate = nl.gate(gid).expect("live gate");
        let cell = nl.lib().cell(gate.cell);
        let in_arr = gate.inputs.iter().map(|&n| arrivals[n.index()]).fold(0.0f64, f64::max);
        for &o in &gate.outputs {
            let load = net_load_ff(nl, layout, o);
            arrivals[o.index()] = in_arr + cell.intrinsic_delay + cell.delay_slope * load;
        }
    }
    let mut critical = 0.0f64;
    let mut endpoint = None;
    for &po in &view.pos {
        if arrivals[po.index()] > critical {
            critical = arrivals[po.index()];
            endpoint = Some(po);
        }
    }
    // Reverse pass: required times against the critical delay as deadline.
    let mut required = vec![f64::INFINITY; nl.net_count()];
    for &po in &view.pos {
        required[po.index()] = critical;
    }
    for &gid in view.order.iter().rev() {
        let gate = nl.gate(gid).expect("live gate");
        let cell = nl.lib().cell(gate.cell);
        // The tightest requirement among this gate's outputs, minus its
        // delay, constrains every input.
        let mut in_req = f64::INFINITY;
        for &o in &gate.outputs {
            let load = net_load_ff(nl, layout, o);
            let d = cell.intrinsic_delay + cell.delay_slope * load;
            in_req = in_req.min(required[o.index()] - d);
        }
        for &i in &gate.inputs {
            required[i.index()] = required[i.index()].min(in_req);
        }
    }
    // Unconstrained nets (no path to any PO — dangling cones) get
    // non-negative slack regardless of their arrival.
    for (i, r) in required.iter_mut().enumerate() {
        if r.is_infinite() {
            *r = critical.max(arrivals[i]);
        }
    }
    TimingReport {
        critical_delay_ps: critical,
        critical_endpoint: endpoint,
        arrivals_ps: arrivals,
        required_ps: required,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::place::Placement;
    use crate::route::route;
    use rsyn_netlist::Library;

    fn analyzed_chain(n: usize) -> TimingReport {
        let lib = Library::osu018();
        let mut nl = Netlist::new("c", lib.clone());
        let mut prev = nl.add_input("a");
        let inv = lib.cell_id("INVX1").unwrap();
        for i in 0..n {
            let next = nl.add_net();
            nl.add_gate(format!("g{i}"), inv, &[prev], &[next]).unwrap();
            prev = next;
        }
        nl.mark_output(prev);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 1).unwrap();
        let layout = route(&nl, &p);
        let view = nl.comb_view().unwrap();
        analyze(&nl, &view, &layout)
    }

    #[test]
    fn longer_chains_are_slower() {
        let d5 = analyzed_chain(5).critical_delay_ps;
        let d20 = analyzed_chain(20).critical_delay_ps;
        assert!(d20 > d5 * 2.0, "5-chain {d5} ps vs 20-chain {d20} ps");
    }

    #[test]
    fn critical_endpoint_is_a_po() {
        let lib = Library::osu018();
        let mut nl = Netlist::new("t", lib.clone());
        let a = nl.add_input("a");
        let y = nl.add_named_net("y");
        let inv = lib.cell_id("INVX1").unwrap();
        nl.add_gate("g", inv, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 1).unwrap();
        let layout = route(&nl, &p);
        let view = nl.comb_view().unwrap();
        let rpt = analyze(&nl, &view, &layout);
        assert_eq!(rpt.critical_endpoint, Some(y));
        assert!(rpt.critical_delay_ps > 0.0);
        assert!(rpt.arrival(y) == rpt.critical_delay_ps);
        assert_eq!(rpt.arrival(a), 0.0);
    }

    #[test]
    fn flop_cuts_the_path() {
        let lib = Library::osu018();
        let mut nl = Netlist::new("seq", lib.clone());
        let clk = nl.add_input("clk");
        let a = nl.add_input("a");
        let inv = lib.cell_id("INVX1").unwrap();
        let dff = lib.cell_id("DFFPOSX1").unwrap();
        // a -> inv -> dff -> inv -> y
        let n1 = nl.add_net();
        nl.add_gate("i1", inv, &[a], &[n1]).unwrap();
        let q = nl.add_net();
        nl.add_gate("ff", dff, &[n1, clk], &[q]).unwrap();
        let y = nl.add_named_net("y");
        nl.add_gate("i2", inv, &[q], &[y]).unwrap();
        nl.mark_output(y);
        let fp = Floorplan::for_cell_area(nl.total_area(), 0.7);
        let p = Placement::global(&nl, fp, 1).unwrap();
        let layout = route(&nl, &p);
        let view = nl.comb_view().unwrap();
        let rpt = analyze(&nl, &view, &layout);
        // Each segment (one inverter) is shorter than a two-inverter chain.
        let inv_cell = lib.cell(inv);
        let two_inv_floor = 2.0 * inv_cell.intrinsic_delay;
        assert!(rpt.critical_delay_ps < two_inv_floor + 100.0);
        // The path from q through i2 starts at 0 (q is a pseudo-PI).
        assert_eq!(rpt.arrival(q), 0.0);
    }
}
