//! The resilient flow entry points: [`run`] and [`run_resumed`].
//!
//! [`run`] wraps the two-phase resynthesis procedure with the
//! `rsyn-resilience` guarantees:
//!
//! * every flow-reachable failure maps to a typed
//!   [`FlowError`] instead of a panic — fatal errors (bad input) return
//!   `Err`, recoverable ones are absorbed and listed in
//!   [`FlowReport::recovered`] while the report still carries the
//!   **best-so-far accepted design**;
//! * after every accepted iteration a [`Checkpoint`] is serialised (when
//!   [`FlowOptions::checkpoint_dir`] is set): the decision log of accepted
//!   remaps, the fault-verdict dictionary, the loop cursor, and a counters
//!   snapshot;
//! * [`run_resumed`] rebuilds the state of an interrupted run by
//!   *replaying* the decision log against the deterministically rebuilt
//!   seed netlist — gate and net ids come out identical, so the continued
//!   run produces byte-identical stable manifests and checkpoints.
//!
//! Replay happens under [`rsyn_observe::pause`] (the replayed iterations
//! were already counted when the checkpoint's counter snapshot was taken)
//! and is validated against the checkpoint's verdict dictionary before the
//! loop continues.

use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rsyn_atpg::engine::AtpgResult;
use rsyn_atpg::fault::FaultStatus;
use rsyn_logic::map::MapOptions;
use rsyn_logic::Window;
use rsyn_netlist::{CellId, GateId, Library, Netlist};
use rsyn_pdesign::place::PlaceError;
use rsyn_resilience::{Checkpoint, FlowError, RemapRecord, ResumeCursor, RunControl, StopCause};

use crate::constraints::DesignConstraints;
use crate::flow::{DesignState, FlowContext};
use crate::resynth::{
    resynthesize_from, AcceptedRemap, IterationTrace, Phase, ResynthCursor, ResynthOptions,
    ResynthOutcome,
};

/// Options for one resilient flow run.
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// Delay/power relaxation `q` in percent.
    pub q_percent: f64,
    /// Inner resynthesis options.
    pub resynth: ResynthOptions,
    /// Run name recorded in checkpoints (ties them to a manifest).
    pub run_name: String,
    /// Benchmark/circuit name the seed netlist is rebuilt from on resume.
    pub circuit: String,
    /// Where per-iteration checkpoints go; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Cooperative stop handle, polled at iteration boundaries (right
    /// after each accepted iteration is checkpointed) and once before the
    /// loop starts. The default handle never stops the run.
    pub control: RunControl,
}

impl FlowOptions {
    /// Options with default resynthesis settings, `q = 5`, and
    /// checkpointing disabled.
    pub fn new(circuit: &str, run_name: &str) -> Self {
        Self {
            q_percent: 5.0,
            resynth: ResynthOptions::default(),
            run_name: run_name.to_string(),
            circuit: circuit.to_string(),
            checkpoint_dir: None,
            control: RunControl::default(),
        }
    }
}

/// What a (possibly degraded) flow run produced.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// The final accepted design — best-so-far when a recoverable failure
    /// cut the run short.
    pub state: DesignState,
    /// Accepted-iteration trace (empty when the loop was cut short by a
    /// recovered panic; the accepted states themselves are never lost).
    pub trace: Vec<IterationTrace>,
    /// Total accepted iterations, including replayed ones on resume.
    pub accepted: usize,
    /// Accepted iterations replayed from a checkpoint (0 for [`run`]).
    pub replayed: usize,
    /// Faults whose PODEM search was aborted even after escalation — these
    /// are excluded from `U` and would otherwise vanish from the report.
    pub aborted: usize,
    /// Recoverable failures the run absorbed, in occurrence order.
    pub recovered: Vec<FlowError>,
    /// Checkpoints successfully written.
    pub checkpoints_written: usize,
    /// Full `PDesign()`+ATPG evaluations in the live (non-replayed) part.
    pub full_evaluations: usize,
    /// Why the run stopped early, if [`FlowOptions::control`] requested a
    /// stop at an iteration boundary; `None` means it ran to completion.
    /// A `Preempted` stop left a checkpoint behind (when checkpointing is
    /// enabled) that resumes byte-identically.
    pub stopped: Option<StopCause>,
}

/// Runs the resilient flow from a seed netlist.
///
/// # Errors
///
/// Fatal [`FlowError`]s only: an invalid netlist, or a seed analysis that
/// does not fit its own floorplan. Failures *after* the first successful
/// analysis are absorbed into [`FlowReport::recovered`].
pub fn run(nl: Netlist, ctx: &FlowContext, options: &FlowOptions) -> Result<FlowReport, FlowError> {
    nl.validate().map_err(|e| FlowError::InvalidNetlist { message: e.to_string() })?;
    let original = DesignState::analyze(nl, ctx, None).map_err(place_error)?;
    let constraints = DesignConstraints::from_original(&original, options.q_percent);
    drive(ctx, options, &constraints, original, ResynthCursor::start(), Vec::new())
}

/// Resumes an interrupted run from a [`Checkpoint`].
///
/// `seed_nl` must be the same seed netlist the original run started from
/// (the caller rebuilds it; this crate does not depend on the benchmark
/// generator). The checkpoint's decision log is replayed against it with
/// observability paused, the result is validated against the recorded
/// verdict dictionary, the counter snapshot is restored, and the loop
/// continues from the recorded cursor.
///
/// # Errors
///
/// [`FlowError::Checkpoint`] when the checkpoint does not match the given
/// context/options or the replay diverges; otherwise as [`run`].
pub fn run_resumed(
    seed_nl: Netlist,
    ctx: &FlowContext,
    options: &FlowOptions,
    checkpoint: &Checkpoint,
) -> Result<FlowReport, FlowError> {
    let label = checkpoint.name.clone();
    let cp_err = |message: String| FlowError::Checkpoint { path: label.clone(), message };
    if checkpoint.seed != ctx.seed {
        return Err(cp_err(format!(
            "seed mismatch: checkpoint has {:#x}, context has {:#x}",
            checkpoint.seed, ctx.seed
        )));
    }
    if checkpoint.circuit != options.circuit {
        return Err(cp_err(format!(
            "circuit mismatch: checkpoint is for `{}`, options say `{}`",
            checkpoint.circuit, options.circuit
        )));
    }
    if checkpoint.name != options.run_name {
        return Err(cp_err(format!(
            "run-name mismatch: checkpoint is `{}`, options say `{}`",
            checkpoint.name, options.run_name
        )));
    }
    if checkpoint.q_bits != options.q_percent.to_bits() {
        return Err(cp_err(format!(
            "q mismatch: checkpoint has q = {}, options say {}",
            f64::from_bits(checkpoint.q_bits),
            options.q_percent
        )));
    }
    seed_nl.validate().map_err(|e| FlowError::InvalidNetlist { message: e.to_string() })?;
    let cursor = decode_cursor(&checkpoint.cursor, &label)?;

    // Replay the decision log with counter recording paused: the replayed
    // iterations are already represented in the checkpoint's snapshot.
    let (original, current) = {
        let _paused = rsyn_observe::pause();
        let original = DesignState::analyze(seed_nl, ctx, None).map_err(place_error)?;
        let mut current = original.clone();
        for (i, rec) in checkpoint.remaps.iter().enumerate() {
            current = replay_remap(ctx, &current, rec, i, &label)?;
        }
        (original, current)
    };
    let verdicts = verdict_string(&current.atpg);
    if verdicts != checkpoint.verdicts {
        return Err(cp_err(format!(
            "verdict dictionary mismatch after replaying {} remaps: \
             {} faults now vs {} recorded",
            checkpoint.remaps.len(),
            verdicts.len(),
            checkpoint.verdicts.len()
        )));
    }
    rsyn_observe::restore_counters(&checkpoint.counters);
    let constraints = DesignConstraints::from_original(&original, options.q_percent);
    drive(ctx, options, &constraints, current, cursor, checkpoint.remaps.clone())
}

/// The shared continuation of [`run`] and [`run_resumed`]: drive the
/// resynthesis loop from `start`/`cursor`, recording and checkpointing
/// accepted iterations, absorbing recoverable failures.
fn drive(
    ctx: &FlowContext,
    options: &FlowOptions,
    constraints: &DesignConstraints,
    start: DesignState,
    cursor: ResynthCursor,
    mut log: Vec<RemapRecord>,
) -> Result<FlowReport, FlowError> {
    let _span = rsyn_observe::span("flow.run");
    let replayed = log.len();
    let mut recovered: Vec<FlowError> = Vec::new();
    let mut best: Option<DesignState> = None;
    let mut checkpoints_written = 0usize;
    // Polled once up front (a job may be cancelled or past its deadline
    // before doing any work) and then at every iteration boundary, right
    // after the accepted iteration has been checkpointed — so a
    // `Preempted` stop always leaves a resumable checkpoint behind.
    let mut stopped: Option<StopCause> = options.control.poll();

    let outcome = if stopped.is_some() {
        Ok(ResynthOutcome { state: start.clone(), trace: Vec::new(), full_evaluations: 0 })
    } else {
        // The pre-iteration netlist: window gate ids in an `AcceptedRemap`
        // refer to it, so names must be resolved against it, not the
        // accepted state.
        let mut last_nl = start.nl.clone();
        let log = &mut log;
        let recovered = &mut recovered;
        let best = &mut best;
        let checkpoints_written = &mut checkpoints_written;
        let stopped = &mut stopped;
        catch_unwind(AssertUnwindSafe(|| {
            resynthesize_from(
                &start,
                ctx,
                constraints,
                &options.resynth,
                cursor,
                &mut |state, remap, next| {
                    log.push(remap_record(remap, &last_nl, &ctx.lib));
                    last_nl = state.nl.clone();
                    *best = Some(state.clone());
                    if let Some(dir) = &options.checkpoint_dir {
                        match write_checkpoint(dir, ctx, options, constraints, state, next, log) {
                            Ok(()) => *checkpoints_written += 1,
                            Err(e) => {
                                rsyn_observe::add("flow.checkpoint_errors", 1);
                                recovered.push(e);
                            }
                        }
                    }
                    if let Some(cause) = options.control.poll() {
                        *stopped = Some(cause);
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                },
            )
        }))
    };

    let (state, trace, full_evaluations) = match outcome {
        Ok(out) => (out.state, out.trace, out.full_evaluations),
        Err(payload) => {
            rsyn_observe::add("flow.recovered.internal", 1);
            recovered.push(FlowError::Internal {
                stage: "resynth".to_string(),
                message: panic_message(payload.as_ref()),
            });
            (best.take().unwrap_or_else(|| start.clone()), Vec::new(), 0)
        }
    };

    let aborted = state.atpg.aborted_count();
    rsyn_observe::add_many(&[("flow.runs", 1), ("flow.aborted", aborted as u64)]);
    Ok(FlowReport {
        state,
        trace,
        accepted: log.len(),
        replayed,
        aborted,
        recovered,
        checkpoints_written,
        full_evaluations,
        stopped,
    })
}

/// Serialises and atomically writes the checkpoint of the just-accepted
/// iteration `log.len()`, plus the `-latest` convenience copy.
fn write_checkpoint(
    dir: &Path,
    ctx: &FlowContext,
    options: &FlowOptions,
    constraints: &DesignConstraints,
    state: &DesignState,
    next: &ResynthCursor,
    log: &[RemapRecord],
) -> Result<(), FlowError> {
    // Volatile span + zone only: a counted span here would desynchronise
    // the counters of a full run from a resumed run (the resumed run
    // writes fewer checkpoints) and break stable-manifest byte-identity.
    let _span = rsyn_observe::span_volatile("flow.checkpoint");
    let _zone = rsyn_observe::trace::zone("flow.checkpoint.write", log.len() as u64);
    if rsyn_resilience::inject::should_fail_checkpoint_write() {
        return Err(FlowError::Checkpoint {
            path: dir.display().to_string(),
            message: "injected checkpoint write failure".to_string(),
        });
    }
    std::fs::create_dir_all(dir).map_err(|e| FlowError::Checkpoint {
        path: dir.display().to_string(),
        message: format!("create dir failed: {e}"),
    })?;
    let cp = Checkpoint {
        name: options.run_name.clone(),
        seed: ctx.seed,
        circuit: options.circuit.clone(),
        q_bits: constraints.q_percent.to_bits(),
        cursor: encode_cursor(next, log.len() as u64),
        remaps: log.to_vec(),
        verdicts: verdict_string(&state.atpg),
        counters: rsyn_observe::counters(),
    };
    cp.write(&dir.join(format!("checkpoint-{}-{:03}.json", options.run_name, log.len())))?;
    cp.write(&dir.join(format!("checkpoint-{}-latest.json", options.run_name)))
}

/// Replays one accepted remap against `base`, reproducing the exact
/// netlist (including gate/net ids) the original run accepted.
fn replay_remap(
    ctx: &FlowContext,
    base: &DesignState,
    rec: &RemapRecord,
    idx: usize,
    label: &str,
) -> Result<DesignState, FlowError> {
    let cp_err = |message: String| FlowError::Checkpoint { path: label.to_string(), message };
    let mut nl = base.nl.clone();
    let window_gates: Vec<GateId> = rec
        .window
        .iter()
        .map(|name| {
            nl.find_gate(name)
                .ok_or_else(|| cp_err(format!("replay {idx}: window gate `{name}` not found")))
        })
        .collect::<Result<_, _>>()?;
    let allowed: Vec<CellId> = rec
        .allowed
        .iter()
        .map(|name| {
            ctx.lib
                .cell_id(name)
                .ok_or_else(|| cp_err(format!("replay {idx}: cell `{name}` not in library")))
        })
        .collect::<Result<_, _>>()?;
    let map_options = MapOptions {
        area_weight: f64::from_bits(rec.area_weight_bits),
        delay_weight: f64::from_bits(rec.delay_weight_bits),
    };
    let window = Window::extract(&nl, &window_gates);
    let new_gates = window
        .resynthesize_with(&mut nl, &ctx.mapper, &allowed, &map_options)
        .map_err(|e| cp_err(format!("replay {idx}: remap failed: {e}")))?;
    let fp = base.pd.placement.floorplan();
    // Mirror `evaluate_candidate`'s analysis branch exactly so the replayed
    // state carries the same verdicts the original evaluation produced.
    let result = if ctx.incremental {
        DesignState::analyze_incremental(
            nl,
            ctx,
            Some((fp, Some(&base.pd.placement))),
            base,
            &new_gates,
        )
    } else {
        DesignState::analyze(nl, ctx, Some((fp, Some(&base.pd.placement))))
    };
    result.map_err(|e| cp_err(format!("replay {idx}: analysis failed: {e}")))
}

/// Serialises an [`AcceptedRemap`] by name, resolving window gate ids
/// against the pre-iteration netlist they belong to.
fn remap_record(remap: &AcceptedRemap, before: &Netlist, lib: &Library) -> RemapRecord {
    RemapRecord {
        phase: match remap.phase {
            Phase::One => 1,
            Phase::Two => 2,
        },
        window: remap
            .window
            .iter()
            .map(|&g| before.gate(g).expect("window gate is live pre-iteration").name.clone())
            .collect(),
        allowed: remap.allowed.iter().map(|&c| lib.cell(c).name.clone()).collect(),
        area_weight_bits: remap.map_options.area_weight.to_bits(),
        delay_weight_bits: remap.map_options.delay_weight.to_bits(),
    }
}

fn encode_cursor(c: &ResynthCursor, iterations_done: u64) -> ResumeCursor {
    ResumeCursor {
        phase: match c.phase {
            Phase::One => 1,
            Phase::Two => 2,
        },
        iter_in_phase: c.iter_in_phase as u64,
        iterations_done,
        p2_bits: c.p2.map_or(0, f64::to_bits),
    }
}

fn decode_cursor(c: &ResumeCursor, label: &str) -> Result<ResynthCursor, FlowError> {
    let phase = match c.phase {
        1 => Phase::One,
        2 => Phase::Two,
        p => {
            return Err(FlowError::Checkpoint {
                path: label.to_string(),
                message: format!("cursor phase {p} is not 1 or 2"),
            })
        }
    };
    let p2 = match (phase, c.p2_bits) {
        (Phase::Two, bits) if bits != 0 => Some(f64::from_bits(bits)),
        _ => None,
    };
    Ok(ResynthCursor { phase, iter_in_phase: c.iter_in_phase as usize, p2 })
}

/// The fault-verdict dictionary: one char per fault in fault-list order.
fn verdict_string(atpg: &AtpgResult) -> String {
    atpg.statuses
        .iter()
        .map(|s| match s {
            FaultStatus::Undetected => 'N',
            FaultStatus::Detected => 'D',
            FaultStatus::Undetectable => 'U',
            FaultStatus::Aborted => 'A',
        })
        .collect()
}

fn place_error(e: PlaceError) -> FlowError {
    match e {
        PlaceError::AreaExceeded { needed_sites, free_sites } => {
            FlowError::Placement { needed_sites, free_sites }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsyn_circuits::build_benchmark_with;
    use rsyn_netlist::Library;
    use rsyn_resilience::inject;

    fn context() -> FlowContext {
        FlowContext::new(Library::osu018())
    }

    fn seed_netlist(ctx: &FlowContext, name: &str) -> Netlist {
        build_benchmark_with(name, &ctx.lib, &ctx.mapper).expect("benchmark builds")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rsyn-run-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn run_reports_accepted_iterations_and_aborted_faults() {
        let ctx = context();
        let nl = seed_netlist(&ctx, "sparc_tlu");
        let options = FlowOptions::new("sparc_tlu", "run-basic");
        let report = run(nl, &ctx, &options).expect("flow runs");
        assert!(report.accepted > 0, "sparc_tlu accepts at least one iteration");
        assert_eq!(report.accepted, report.trace.len());
        assert_eq!(report.replayed, 0);
        assert_eq!(report.aborted, report.state.atpg.aborted_count());
        assert!(report.recovered.is_empty(), "{:?}", report.recovered);
        assert_eq!(report.checkpoints_written, 0, "checkpointing disabled");
    }

    #[test]
    fn invalid_netlist_is_a_fatal_typed_error() {
        let ctx = context();
        let lib = &ctx.lib;
        let mut nl = Netlist::new("broken", lib.clone());
        let a = nl.add_input("a");
        let y = nl.add_named_net("y");
        let floating = nl.add_net();
        let nand = lib.cell_id("NAND2X1").expect("cell");
        nl.add_gate("u0", nand, &[a, floating], &[y]).expect("gate");
        nl.mark_output(y);
        let err = run(nl, &ctx, &FlowOptions::new("broken", "run-broken")).unwrap_err();
        assert!(matches!(err, FlowError::InvalidNetlist { .. }), "{err}");
        assert!(!err.is_recoverable());
    }

    #[test]
    fn resume_from_first_checkpoint_matches_uninterrupted_run() {
        let ctx = context();
        let dir = temp_dir("resume");
        let mut options = FlowOptions::new("sparc_tlu", "run-resume");
        options.checkpoint_dir = Some(dir.clone());

        let full = run(seed_netlist(&ctx, "sparc_tlu"), &ctx, &options).expect("full run");
        assert!(full.checkpoints_written >= full.accepted, "one checkpoint per acceptance");
        assert!(full.accepted >= 1, "need at least one checkpoint to resume from");

        // Resume from the FIRST checkpoint: everything after iteration 1 is
        // re-derived and must land on the same design.
        let first = Checkpoint::read(&dir.join("checkpoint-run-resume-001.json")).expect("read");
        assert_eq!(first.remaps.len(), 1);
        let mut resumed_options = options.clone();
        resumed_options.checkpoint_dir = None;
        let resumed = run_resumed(seed_netlist(&ctx, "sparc_tlu"), &ctx, &resumed_options, &first)
            .expect("resumed run");

        assert_eq!(resumed.replayed, 1);
        assert_eq!(resumed.accepted, full.accepted, "same acceptance sequence");
        assert_eq!(
            resumed.state.undetectable_count(),
            full.state.undetectable_count(),
            "same final U"
        );
        assert_eq!(verdict_string(&resumed.state.atpg), verdict_string(&full.state.atpg));
        assert_eq!(resumed.state.delay_ps(), full.state.delay_ps());
        assert_eq!(resumed.state.power_uw(), full.state.power_uw());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_context() {
        let ctx = context();
        let dir = temp_dir("mismatch");
        let mut options = FlowOptions::new("sparc_tlu", "run-mismatch");
        options.checkpoint_dir = Some(dir.clone());
        let report = run(seed_netlist(&ctx, "sparc_tlu"), &ctx, &options).expect("run");
        assert!(report.accepted >= 1);
        let cp =
            Checkpoint::read(&dir.join("checkpoint-run-mismatch-latest.json")).expect("latest");

        let mut wrong_q = options.clone();
        wrong_q.q_percent = 3.0;
        let err = run_resumed(seed_netlist(&ctx, "sparc_tlu"), &ctx, &wrong_q, &cp).unwrap_err();
        assert!(matches!(err, FlowError::Checkpoint { .. }), "{err}");

        let mut wrong_seed_ctx = context();
        wrong_seed_ctx.seed = 1;
        let err =
            run_resumed(seed_netlist(&wrong_seed_ctx, "sparc_tlu"), &wrong_seed_ctx, &options, &cp)
                .unwrap_err();
        assert!(matches!(err, FlowError::Checkpoint { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_pdesign_rejection_is_absorbed_and_run_still_succeeds() {
        let ctx = context();
        let clean =
            run(seed_netlist(&ctx, "sparc_tlu"), &ctx, &FlowOptions::new("sparc_tlu", "run-clean"))
                .expect("clean run");

        // Ordinal 0 is the seed analysis; rejecting ordinal 1 hits the
        // first candidate evaluation, which the loop skips over.
        let plan = inject::InjectionPlan::new().reject_pdesign(1);
        let armed = inject::arm(plan);
        let report = run(
            seed_netlist(&ctx, "sparc_tlu"),
            &ctx,
            &FlowOptions::new("sparc_tlu", "run-injected"),
        )
        .expect("injected run still returns Ok");
        drop(armed);

        assert!(report.accepted >= 1, "flow recovers and keeps accepting");
        assert!(
            report.state.undetectable_count() <= clean.state.undetectable_count() + 5,
            "injected run stays in the same quality regime: U {} vs clean {}",
            report.state.undetectable_count(),
            clean.state.undetectable_count()
        );
    }
}
