//! Row extraction for the paper's Table I and Table II, plus the runtime
//! provenance line that records how an experiment was executed (worker
//! threads, incremental evaluation, evaluation counts) so `Rtime` columns
//! can be compared across machines and thread counts.

use crate::flow::{DesignState, FlowContext};
use crate::resynth::QSweepOutcome;

/// One row of Table I (clustering of the original design).
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// Circuit name.
    pub circuit: String,
    /// Internal fault count.
    pub f_in: usize,
    /// External fault count.
    pub f_ex: usize,
    /// Undetectable internal faults.
    pub u_in: usize,
    /// Undetectable external faults.
    pub u_ex: usize,
    /// Gates corresponding to all undetectable faults.
    pub g_u: usize,
    /// Gates corresponding to `S_max`.
    pub g_max: usize,
    /// `|S_max|`.
    pub s_max: usize,
    /// Percentage of undetectable faults inside `S_max`.
    pub s_max_pct_u: f64,
}

impl Table1Row {
    /// Extracts the row from an analysed design.
    pub fn of(circuit: &str, state: &DesignState) -> Self {
        let f_in = state.faults.iter().filter(|f| f.is_internal()).count();
        let f_ex = state.fault_count() - f_in;
        let u_in = state.undetectable_internal_count();
        let u = state.undetectable_count();
        let u_ex = u - u_in;
        let s_max = state.s_max_size();
        Self {
            circuit: circuit.to_string(),
            f_in,
            f_ex,
            u_in,
            u_ex,
            g_u: state.g_u().len(),
            g_max: state.g_max().len(),
            s_max,
            s_max_pct_u: if u == 0 { 0.0 } else { 100.0 * s_max as f64 / u as f64 },
        }
    }

    /// Table header matching the paper's column names.
    pub fn header() -> String {
        format!(
            "{:<12} {:>8} {:>8} {:>7} {:>7} {:>6} {:>6} {:>7} {:>9}",
            "Circuit", "F_In", "F_Ex", "U_In", "U_Ex", "G_U", "Gmax", "Smax", "%Smax_U"
        )
    }
}

impl std::fmt::Display for Table1Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:>8} {:>8} {:>7} {:>7} {:>6} {:>6} {:>7} {:>8.2}%",
            self.circuit,
            self.f_in,
            self.f_ex,
            self.u_in,
            self.u_ex,
            self.g_u,
            self.g_max,
            self.s_max,
            self.s_max_pct_u
        )
    }
}

/// One row of Table II (original or resynthesized design).
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub circuit: String,
    /// `orig` or the chosen `q` (`Max Inc`).
    pub max_inc: String,
    /// Total faults.
    pub f: usize,
    /// Undetectable faults.
    pub u: usize,
    /// Coverage `1 − U/F` (percent).
    pub cov: f64,
    /// Test count.
    pub t: usize,
    /// `|S_max|`.
    pub s_max: usize,
    /// Percentage of all faults in `S_max`.
    pub s_max_pct_all: f64,
    /// Internal faults in `S_max`.
    pub s_max_i: usize,
    /// Percentage of `S_max` that is internal.
    pub s_max_i_pct: f64,
    /// Delay relative to the original (percent).
    pub delay_pct: f64,
    /// Power relative to the original (percent).
    pub power_pct: f64,
    /// Runtime relative to one base iteration.
    pub rtime: f64,
}

impl Table2Row {
    /// The `orig` row.
    pub fn original(circuit: &str, state: &DesignState) -> Self {
        Self::build(circuit, "orig", state, state, 1.0)
    }

    /// The resynthesized row from a finished `q` sweep.
    pub fn resynthesized(circuit: &str, original: &DesignState, sweep: &QSweepOutcome) -> Self {
        Self::build(
            circuit,
            &format!("{}%", sweep.chosen_q),
            original,
            sweep.final_state(),
            sweep.relative_runtime(),
        )
    }

    fn build(
        circuit: &str,
        max_inc: &str,
        original: &DesignState,
        state: &DesignState,
        rtime: f64,
    ) -> Self {
        let s_max = state.s_max_size();
        let s_max_i = state.s_max_internal();
        Self {
            circuit: circuit.to_string(),
            max_inc: max_inc.to_string(),
            f: state.fault_count(),
            u: state.undetectable_count(),
            cov: 100.0 * state.coverage(),
            t: state.atpg.tests.len(),
            s_max,
            s_max_pct_all: state.s_max_percent_of_f(),
            s_max_i,
            s_max_i_pct: if s_max == 0 { 0.0 } else { 100.0 * s_max_i as f64 / s_max as f64 },
            delay_pct: 100.0 * state.delay_ps() / original.delay_ps(),
            power_pct: 100.0 * state.power_uw() / original.power_uw(),
            rtime,
        }
    }

    /// Table header matching the paper's column names.
    pub fn header() -> String {
        format!(
            "{:<12} {:>5} {:>8} {:>6} {:>7} {:>5} {:>6} {:>9} {:>7} {:>8} {:>8} {:>8} {:>6}",
            "Circuit",
            "MaxInc",
            "F",
            "U",
            "Cov",
            "T",
            "Smax",
            "%Smax_all",
            "Smax_I",
            "%Smax_I",
            "Delay",
            "Power",
            "Rtime"
        )
    }
}

impl std::fmt::Display for Table2Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:>5} {:>8} {:>6} {:>6.2}% {:>5} {:>6} {:>8.2}% {:>7} {:>7.2}% {:>7.2}% {:>7.2}% {:>6.2}",
            self.circuit,
            self.max_inc,
            self.f,
            self.u,
            self.cov,
            self.t,
            self.s_max,
            self.s_max_pct_all,
            self.s_max_i,
            self.s_max_i_pct,
            self.delay_pct,
            self.power_pct,
            self.rtime
        )
    }
}

/// How an experiment was executed: engine configuration and effort
/// counters that give the paper's `Rtime` column its context.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeReport {
    /// Resolved ATPG worker-thread count.
    pub threads: usize,
    /// Whether candidate evaluations used the cone-of-influence
    /// incremental path.
    pub incremental: bool,
    /// Full `PDesign()`+ATPG candidate evaluations performed.
    pub full_evaluations: usize,
    /// Wall-clock seconds of the whole sweep.
    pub sweep_seconds: f64,
    /// Wall-clock seconds of one baseline analysis.
    pub baseline_seconds: f64,
}

impl RuntimeReport {
    /// Builds the report for a finished sweep under `ctx`.
    pub fn of(ctx: &FlowContext, sweep: &QSweepOutcome) -> Self {
        Self {
            threads: ctx.atpg.effective_threads(),
            incremental: ctx.incremental,
            full_evaluations: sweep.full_evaluations,
            sweep_seconds: sweep.sweep_seconds,
            baseline_seconds: sweep.baseline_seconds,
        }
    }
}

impl std::fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runtime: threads={} incremental={} evaluations={} sweep={:.2}s baseline={:.2}s",
            self.threads,
            self.incremental,
            self.full_evaluations,
            self.sweep_seconds,
            self.baseline_seconds
        )
    }
}

/// Averages a set of Table II rows (the paper's `average` rows).
pub fn average_rows(label: &str, rows: &[Table2Row]) -> Table2Row {
    let n = rows.len().max(1) as f64;
    let avg = |f: &dyn Fn(&Table2Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    Table2Row {
        circuit: "average".to_string(),
        max_inc: label.to_string(),
        f: (avg(&|r| r.f as f64)).round() as usize,
        u: (avg(&|r| r.u as f64)).round() as usize,
        cov: avg(&|r| r.cov),
        t: (avg(&|r| r.t as f64)).round() as usize,
        s_max: (avg(&|r| r.s_max as f64)).round() as usize,
        s_max_pct_all: avg(&|r| r.s_max_pct_all),
        s_max_i: (avg(&|r| r.s_max_i as f64)).round() as usize,
        s_max_i_pct: avg(&|r| r.s_max_i_pct),
        delay_pct: avg(&|r| r.delay_pct),
        power_pct: avg(&|r| r.power_pct),
        rtime: avg(&|r| r.rtime),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowContext;
    use rsyn_circuits::build_benchmark_with;
    use rsyn_netlist::Library;

    #[test]
    fn table1_row_is_consistent() {
        let ctx = FlowContext::new(Library::osu018());
        let nl = build_benchmark_with("sparc_tlu", &ctx.lib, &ctx.mapper).unwrap();
        let state = DesignState::analyze(nl, &ctx, None).unwrap();
        let row = Table1Row::of("sparc_tlu", &state);
        assert_eq!(row.f_in + row.f_ex, state.fault_count());
        assert_eq!(row.u_in + row.u_ex, state.undetectable_count());
        assert!(row.g_max <= row.g_u);
        assert!(row.s_max <= row.u_in + row.u_ex);
        let line = row.to_string();
        assert!(line.contains("sparc_tlu"));
        assert!(!Table1Row::header().is_empty());
    }

    #[test]
    fn table2_original_row() {
        let ctx = FlowContext::new(Library::osu018());
        let nl = build_benchmark_with("sparc_tlu", &ctx.lib, &ctx.mapper).unwrap();
        let state = DesignState::analyze(nl, &ctx, None).unwrap();
        let row = Table2Row::original("sparc_tlu", &state);
        assert_eq!(row.max_inc, "orig");
        assert!((row.delay_pct - 100.0).abs() < 1e-9);
        assert!((row.power_pct - 100.0).abs() < 1e-9);
        assert!(row.cov <= 100.0);
    }

    #[test]
    fn averaging() {
        let a = Table2Row {
            circuit: "a".into(),
            max_inc: "orig".into(),
            f: 100,
            u: 10,
            cov: 90.0,
            t: 5,
            s_max: 4,
            s_max_pct_all: 4.0,
            s_max_i: 2,
            s_max_i_pct: 50.0,
            delay_pct: 100.0,
            power_pct: 100.0,
            rtime: 1.0,
        };
        let mut b = a.clone();
        b.f = 200;
        b.u = 30;
        b.cov = 85.0;
        let avg = average_rows("orig", &[a, b]);
        assert_eq!(avg.f, 150);
        assert_eq!(avg.u, 20);
        assert!((avg.cov - 87.5).abs() < 1e-9);
    }
}
