//! The backtracking procedure of Section III-C.
//!
//! When a resynthesized window satisfies the acceptance criteria but
//! violates the design constraints, replacing *fewer* gates usually lowers
//! the overhead. `G_i` — the window gates whose cell type is banned — is
//! shrunk in groups of √n (gates moved to `G_back` stay untouched); if a
//! shrunken window meets the constraints but no longer the acceptance
//! criteria, the last group is returned one gate at a time. The procedure
//! stops at the first accepted candidate, or reports failure (which
//! terminates the current resynthesis phase, as in the paper).

use rsyn_logic::map::MapOptions;
use rsyn_netlist::{CellId, GateId};

use crate::constraints::DesignConstraints;
use crate::flow::{DesignState, FlowContext};
use crate::resynth::evaluate_candidate;

/// Runs the backtracking procedure. `banned` is the prefix
/// `cell_0..=cell_i` of the internal-fault cell order; `allowed` the
/// remaining cells.
///
/// On success, returns the accepted state **and the shrunken window** that
/// produced it — the replay information checkpoint/resume needs to rebuild
/// the same netlist deterministically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn backtrack(
    ctx: &FlowContext,
    state: &DesignState,
    window: &[GateId],
    banned: &[CellId],
    allowed: &[CellId],
    constraints: &DesignConstraints,
    accept: &(dyn Fn(&DesignState) -> bool + '_),
    map_options: &MapOptions,
    evaluations: &mut usize,
) -> Option<(DesignState, Vec<GateId>)> {
    rsyn_observe::add("resynth.backtrack.calls", 1);
    let _zone = rsyn_observe::trace::zone("resynth.backtrack", window.len() as u64);
    // G_i: window gates of banned cell types, ordered so that the most
    // timing-critical gates are *removed first* (moved to G_back): the
    // constraint violations come from rebuilding critical-path gates, so
    // sparing those recovers the budgets with the fewest removals.
    let gate_slack = |g: GateId| -> f64 {
        state
            .nl
            .gate(g)
            .expect("live")
            .outputs
            .iter()
            .map(|&o| state.pd.timing.slack(o))
            .fold(f64::INFINITY, f64::min)
    };
    let mut g_i: Vec<GateId> = window
        .iter()
        .copied()
        .filter(|&g| banned.contains(&state.nl.gate(g).expect("live").cell))
        .collect();
    // `pop()` takes from the end, so sort descending by slack.
    g_i.sort_by(|&a, &b| gate_slack(b).total_cmp(&gate_slack(a)).then(a.cmp(&b)));
    let n = g_i.len();
    if n == 0 {
        return None;
    }
    let step = (n as f64).sqrt().ceil() as usize;
    let groups = n.div_ceil(step);
    rsyn_observe::hist_add("resynth.backtrack.group_size", step as u64);

    // Evaluate with the last `k` groups of G_i spared (moved to G_back).
    // Every such evaluation replaces a strictly smaller gate set than the
    // failed full window — `resynth.backtrack_shrinks` counts exactly these
    // Section III-C shrink attempts.
    let mut cache: Vec<Option<Option<DesignState>>> = vec![None; groups + 1];
    let eval_k = |k: usize, evaluations: &mut usize| -> Option<DesignState> {
        rsyn_observe::add_many(&[("resynth.backtrack.evals", 1), ("resynth.backtrack_shrinks", 1)]);
        let spared = (k * step).min(n);
        let win: Vec<GateId> = g_i[..n - spared].to_vec();
        evaluate_candidate(ctx, state, &win, allowed, map_options, evaluations)
    };

    // The constraint violation shrinks monotonically as more (most-critical
    // first) gates are spared, so bisect for the smallest k whose candidate
    // meets the constraints — this replaces the paper's linear group walk
    // with an equivalent but cheaper search over the same √n grid.
    let mut lo = 1usize; // k = 0 is the already-failed full replacement
    let mut hi = groups;
    let mut best: Option<(usize, DesignState)> = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let cand = match &cache[mid] {
            Some(c) => c.clone(),
            None => {
                let c = eval_k(mid, evaluations);
                cache[mid] = Some(c.clone());
                c
            }
        };
        let ok = cand.as_ref().is_some_and(|c| constraints.satisfied_by(c));
        crate::resynth::trace_log(|| {
            format!(
                "backtrack bisect k={mid}/{groups}: {}",
                match &cand {
                    None => "no candidate (pre-check/placement)".to_string(),
                    Some(c) => format!(
                        "U {}, Smax {}, delay {:.0}, power {:.0}, constraints={}",
                        c.undetectable_count(),
                        c.s_max_size(),
                        c.delay_ps(),
                        c.power_uw(),
                        ok
                    ),
                }
            )
        });
        if ok {
            best = Some((mid, cand.expect("ok candidate")));
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    let (k, cand) = best?;
    if accept(&cand) {
        rsyn_observe::add("resynth.backtrack.accepted", 1);
        let spared = (k * step).min(n);
        return Some((cand, g_i[..n - spared].to_vec()));
    }
    // Constraints recovered but the shrunken replacement no longer meets the
    // acceptance criteria: return the last group's gates to G_i one at a
    // time (Section III-C), i.e. reduce the spared count step-wise.
    let spared = (k * step).min(n);
    for spared2 in (spared.saturating_sub(step)..spared).rev() {
        rsyn_observe::add_many(&[
            ("resynth.backtrack.group_shrinks", 1),
            ("resynth.backtrack_shrinks", 1),
        ]);
        let win: Vec<GateId> = g_i[..n - spared2].to_vec();
        if let Some(c2) = evaluate_candidate(ctx, state, &win, allowed, map_options, evaluations) {
            if accept(&c2) && constraints.satisfied_by(&c2) {
                rsyn_observe::add("resynth.backtrack.accepted", 1);
                return Some((c2, win));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resynth::ResynthOptions;
    use rsyn_circuits::build_benchmark_with;
    use rsyn_netlist::Library;

    /// Exercises backtracking directly with deliberately tight constraints:
    /// the full-window candidate will usually violate them, forcing the √n
    /// group machinery to run.
    #[test]
    fn backtracking_respects_constraints() {
        let lib = Library::osu018();
        let ctx = FlowContext::new(lib.clone());
        let nl = build_benchmark_with("sparc_tlu", &ctx.lib, &ctx.mapper).unwrap();
        let original = DesignState::analyze(nl, &ctx, None).unwrap();
        let window = original.gates_with_undetectable_internal(&original.g_u());
        if window.is_empty() {
            return; // nothing to do on this seed; covered by other tests
        }
        let order = ctx.catalog.cells_by_internal_faults(&ctx.lib);
        // Ban the top cell only.
        let banned = &order[..1];
        let allowed: Vec<CellId> = order[1..]
            .iter()
            .copied()
            .filter(|&c| ctx.lib.cell(c).class == rsyn_netlist::CellClass::Comb)
            .collect();
        // Impossibly tight power budget forces failure...
        let tight = DesignConstraints {
            max_delay_ps: original.delay_ps(),
            max_power_uw: original.power_uw() * 0.01,
            floorplan: original.pd.placement.floorplan(),
            q_percent: 0.0,
        };
        let accept = |c: &DesignState| c.undetectable_count() < original.undetectable_count();
        let mut evals = 0;
        let opts = ResynthOptions::default();
        let out = backtrack(
            &ctx,
            &original,
            &window,
            banned,
            &allowed,
            &tight,
            &accept,
            &opts.map_options,
            &mut evals,
        );
        assert!(out.is_none(), "1% power budget cannot be met");
        // ...while a loose budget lets some candidate through (if any
        // candidate passes the internal pre-check at all).
        let loose = DesignConstraints {
            max_delay_ps: original.delay_ps() * 2.0,
            max_power_uw: original.power_uw() * 2.0,
            floorplan: original.pd.placement.floorplan(),
            q_percent: 100.0,
        };
        let mut evals = 0;
        if let Some((s, _win)) = backtrack(
            &ctx,
            &original,
            &window,
            banned,
            &allowed,
            &loose,
            &accept,
            &opts.map_options,
            &mut evals,
        ) {
            assert!(s.undetectable_count() < original.undetectable_count());
            assert!(loose.satisfied_by(&s));
        }
    }
}
