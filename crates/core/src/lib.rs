//! The paper's contribution: a two-phase logic-resynthesis procedure (with
//! backtracking and a `q` relaxation sweep) that eliminates clusters of
//! undetectable DFM-guideline faults while preserving the design
//! constraints of critical-path delay, power, and die area.
//!
//! * [`flow`] — one full design analysis: physical design in the fixed
//!   floorplan, DFM fault extraction, ATPG, clustering ([`DesignState`]);
//! * [`constraints`] — delay/power/area budgets derived from the original
//!   design and a percentage relaxation `q`;
//! * [`resynth`] — Section III-B: phase 1 attacks the largest cluster
//!   `S_max`, phase 2 the whole circuit; cells are banned in decreasing
//!   internal-fault order and `PDesign()` runs only when the quick internal
//!   check passes;
//! * [`backtrack`] — Section III-C: shrink the replaced-gate set in √n
//!   groups when the constraints are violated;
//! * [`report`] — Table I / Table II row extraction.
//!
//! # Example
//!
//! ```no_run
//! use rsyn_core::{flow::{DesignState, FlowContext}, resynth::{resynthesize, ResynthOptions}};
//! use rsyn_core::constraints::DesignConstraints;
//! use rsyn_circuits::build_benchmark;
//! use rsyn_netlist::Library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::osu018();
//! let ctx = FlowContext::new(lib.clone());
//! let nl = build_benchmark("sparc_tlu", &lib).expect("benchmark");
//! let original = DesignState::analyze(nl, &ctx, None)?;
//! let constraints = DesignConstraints::from_original(&original, 0.0);
//! let outcome = resynthesize(&original, &ctx, &constraints, &ResynthOptions::default());
//! assert!(outcome.state.undetectable_count() <= original.undetectable_count());
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used)]

pub mod backtrack;
pub mod constraints;
pub mod flow;
pub mod report;
pub mod resynth;
pub mod run;

pub use constraints::DesignConstraints;
pub use flow::{DesignState, FlowContext};
pub use report::{Table1Row, Table2Row};
pub use resynth::{
    resynthesize, resynthesize_from, run_q_sweep, AcceptedRemap, QSweepOutcome, ResynthCursor,
    ResynthOptions, ResynthOutcome,
};
pub use run::{run, run_resumed, FlowOptions, FlowReport};
