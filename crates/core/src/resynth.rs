//! The two-phase resynthesis procedure of Section III-B and the outer `q`
//! sweep of Section I.
//!
//! Phase 1 repeatedly targets the current largest cluster of undetectable
//! faults (`C_sub = G_max`); phase 2 targets all gates with undetectable
//! faults. In every iteration, library cells are considered in decreasing
//! internal-fault order: considering `cell_i` bans `cell_0..=cell_i` from
//! the remap, so the window is rebuilt from cells with fewer internal
//! faults. `PDesign()` (and the expensive ATPG re-run) only happens when a
//! cheap check shows the undetectable-internal-fault weight decreasing.
//! Candidates that meet the acceptance criteria but violate the design
//! constraints go through the backtracking procedure of Section III-C.

use std::ops::ControlFlow;
use std::time::Instant;

use rsyn_logic::map::MapOptions;
use rsyn_logic::Window;
use rsyn_netlist::{CellClass, CellId, GateId};

use crate::backtrack::backtrack;
use crate::constraints::DesignConstraints;
use crate::flow::{DesignState, FlowContext};

/// Options for the resynthesis procedure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResynthOptions {
    /// Phase-1 termination target: stop when `|S_max|` falls below this
    /// percentage of `|F|` (the paper uses 1%).
    pub p1_percent: f64,
    /// Stop a phase after this many consecutive candidates whose total `U`
    /// increased (the paper's trend-up termination).
    pub trend_stop: usize,
    /// Safety bound on accepted iterations per phase.
    pub max_iterations: usize,
    /// Whether the Section III-C backtracking procedure runs when
    /// constraints are violated.
    pub backtracking: bool,
    /// Mapping cost blend used by `Synthesize()`.
    pub map_options: MapOptions,
}

impl Default for ResynthOptions {
    fn default() -> Self {
        Self {
            p1_percent: 1.0,
            trend_stop: 2,
            max_iterations: 25,
            backtracking: true,
            map_options: MapOptions::blend(0.35),
        }
    }
}

/// Which phase an iteration belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Largest-cluster phase.
    One,
    /// Whole-circuit phase.
    Two,
}

/// Replay information for one accepted iteration: re-applying
/// `window`/`allowed`/`map_options` to the pre-iteration netlist rebuilds
/// the accepted netlist (and its gate/net ids) deterministically — the
/// record checkpoint/resume serialises.
#[derive(Clone, Debug)]
pub struct AcceptedRemap {
    /// Phase the iteration was accepted in.
    pub phase: Phase,
    /// The gates the winning candidate actually replaced (after any
    /// Section III-C shrinking).
    pub window: Vec<GateId>,
    /// The library cells the mapper was allowed to use.
    pub allowed: Vec<CellId>,
    /// The mapping cost blend the winning candidate used.
    pub map_options: MapOptions,
}

/// Position in the two-phase loop — where a resumed run continues.
#[derive(Clone, Copy, Debug)]
pub struct ResynthCursor {
    /// Phase to (re)enter.
    pub phase: Phase,
    /// Accepted iterations already performed in that phase.
    pub iter_in_phase: usize,
    /// Phase 2's cluster-size bound `p2`, fixed at phase entry; `None`
    /// while still in phase 1 (it will be computed on entry).
    pub p2: Option<f64>,
}

impl ResynthCursor {
    /// The cursor of a fresh (non-resumed) run.
    pub fn start() -> Self {
        Self { phase: Phase::One, iter_in_phase: 0, p2: None }
    }
}

/// Callback invoked after every accepted iteration with the accepted
/// state, its replay record, and the cursor of the *next* iteration.
///
/// Returning [`ControlFlow::Break`] stops the loop at this iteration
/// boundary — the accepted state so far becomes the outcome. This is the
/// hook behind cooperative cancellation and checkpoint-backed preemption:
/// the caller has just checkpointed the accepted iteration, so stopping
/// here loses nothing.
pub type OnAccept<'a> =
    dyn FnMut(&DesignState, &AcceptedRemap, &ResynthCursor) -> ControlFlow<()> + 'a;

/// Trace of one accepted (or terminal) iteration, for the Fig. 2 series.
#[derive(Clone, Debug)]
pub struct IterationTrace {
    /// Phase of the iteration.
    pub phase: Phase,
    /// Name of the most-faulty cell still allowed (`cell_{i+1}`), if an
    /// acceptance happened.
    pub banned_through: Option<String>,
    /// Whether backtracking was needed.
    pub used_backtracking: bool,
    /// `U` after the iteration.
    pub undetectable: usize,
    /// `|S_max|` after the iteration.
    pub s_max: usize,
    /// Cluster size distribution (top 10) after the iteration.
    pub cluster_sizes: Vec<usize>,
    /// Delay after the iteration (ps).
    pub delay_ps: f64,
    /// Power after the iteration (µW).
    pub power_uw: f64,
}

/// Result of [`resynthesize`].
#[derive(Clone, Debug)]
pub struct ResynthOutcome {
    /// The final design state.
    pub state: DesignState,
    /// Accepted-iteration trace (phase 1 then phase 2).
    pub trace: Vec<IterationTrace>,
    /// Number of full `PDesign()`+ATPG evaluations performed.
    pub full_evaluations: usize,
}

/// Acceptance criteria closure type.
type Accept<'a> = dyn Fn(&DesignState) -> bool + 'a;

/// Emits a debug line when the `RSYN_TRACE` environment variable is set.
pub(crate) fn trace_log(msg: impl FnOnce() -> String) {
    if std::env::var_os("RSYN_TRACE").is_some() {
        eprintln!("[rsyn] {}", msg());
    }
}

/// Evaluates one resynthesis candidate: remap `window_gates` with the
/// `allowed` cells, run the quick internal check, and only then the full
/// `PDesign()` + fault extraction + ATPG + clustering.
///
/// Returns `None` when the remap fails, the quick check rejects, or the
/// candidate no longer fits the fixed floorplan.
pub(crate) fn evaluate_candidate(
    ctx: &FlowContext,
    base: &DesignState,
    window_gates: &[GateId],
    allowed: &[CellId],
    map_options: &MapOptions,
    evaluations: &mut usize,
) -> Option<DesignState> {
    if window_gates.is_empty() {
        return None;
    }
    rsyn_observe::add("resynth.candidates", 1);
    let mut nl = base.nl.clone();
    let window = Window::extract(&nl, window_gates);
    let old_weight: usize = window
        .gates
        .iter()
        .map(|&g| ctx.catalog.syndrome_free_count(base.nl.gate(g).expect("live").cell))
        .sum();
    let new_gates = window.resynthesize_with(&mut nl, &ctx.mapper, allowed, map_options).ok()?;
    let new_weight: usize = new_gates
        .iter()
        .map(|&g| ctx.catalog.syndrome_free_count(nl.gate(g).expect("live").cell))
        .sum();
    // The paper's gate on PDesign(): the (cheaply computable) undetectable
    // internal fault weight must decrease before physical design is re-run.
    if new_weight >= old_weight {
        rsyn_observe::add("resynth.precheck_rejects", 1);
        trace_log(|| {
            format!(
                "precheck reject: window {} gates, weight {} -> {}",
                window_gates.len(),
                old_weight,
                new_weight
            )
        });
        return None;
    }
    *evaluations += 1;
    let fp = base.pd.placement.floorplan();
    // The cone-of-influence fast path: only faults the remapped gates can
    // influence are re-simulated; everything else carries its verdict over
    // from `base` (see `rsyn_atpg::incremental`).
    let result = if ctx.incremental {
        DesignState::analyze_incremental(
            nl,
            ctx,
            Some((fp, Some(&base.pd.placement))),
            base,
            &new_gates,
        )
    } else {
        DesignState::analyze(nl, ctx, Some((fp, Some(&base.pd.placement))))
    };
    if let Err(e) = &result {
        rsyn_observe::add("resynth.placement_rejects", 1);
        trace_log(|| format!("placement reject: window {} gates: {e}", window_gates.len()));
    }
    result.ok()
}

/// One pass over the cell order for a given window.
///
/// First every eligible cell prefix is evaluated once (cheap scan); the
/// first candidate meeting both the acceptance criteria and the design
/// constraints wins. If every accepting candidate violates the
/// constraints, the earliest one (the paper's cell order) is retried
/// timing-driven and then handed to the Section III-C backtracking
/// procedure.
#[allow(clippy::too_many_arguments)]
fn try_cells(
    ctx: &FlowContext,
    state: &DesignState,
    window: &[GateId],
    constraints: &DesignConstraints,
    accept: &Accept<'_>,
    options: &ResynthOptions,
    phase: Phase,
    evaluations: &mut usize,
    used_backtracking: &mut bool,
    banned_through: &mut Option<String>,
) -> Option<(DesignState, AcceptedRemap)> {
    let order = ctx.catalog.cells_by_internal_faults(&ctx.lib);
    let window_cells: Vec<CellId> =
        window.iter().map(|&g| state.nl.gate(g).expect("live").cell).collect();
    let mut worse_streak = 0usize;
    // (i, window_i, allowed) of the first accepting-but-violating candidate.
    let mut fallback: Option<(usize, Vec<GateId>, Vec<CellId>)> = None;
    for i in 0..order.len() {
        let cell_i = order[i];
        // Eligibility (1)+(2): cell_i is used by a window gate (window gates
        // all carry undetectable internal faults by construction).
        if !window_cells.contains(&cell_i) {
            continue;
        }
        // Eligibility (3): the remaining cells can synthesize the window.
        let allowed: Vec<CellId> = order[i + 1..]
            .iter()
            .copied()
            .filter(|&c| ctx.lib.cell(c).class == CellClass::Comb)
            .collect();
        let mut mask = vec![false; ctx.lib.len()];
        for &c in &allowed {
            mask[c.index()] = true;
        }
        if !ctx.mapper.is_complete(&mask) {
            continue;
        }
        // The remap window: gates whose cell is banned (`cell_0..=cell_i`).
        // Window gates of still-allowed types act as `G_zero` here — the
        // mapper could only re-pick the same cells for them, so leaving
        // them untouched avoids needless design disruption (Section III-B's
        // "this is important to avoid unnecessary design changes").
        let banned = &order[..=i];
        let window_i: Vec<GateId> = window
            .iter()
            .copied()
            .filter(|&g| banned.contains(&state.nl.gate(g).expect("live").cell))
            .collect();
        if window_i.is_empty() {
            continue;
        }
        let Some(cand) =
            evaluate_candidate(ctx, state, &window_i, &allowed, &options.map_options, evaluations)
        else {
            continue;
        };
        trace_log(|| {
            format!(
                "candidate ban<={}: U {} -> {}, Smax {} -> {}, delay {:.0} -> {:.0} (max {:.0}), power {:.0} -> {:.0} (max {:.0})",
                ctx.lib.cell(cell_i).name,
                state.undetectable_count(), cand.undetectable_count(),
                state.s_max_size(), cand.s_max_size(),
                state.delay_ps(), cand.delay_ps(), constraints.max_delay_ps,
                state.power_uw(), cand.power_uw(), constraints.max_power_uw,
            )
        });
        if accept(&cand) {
            if constraints.satisfied_by(&cand) {
                *banned_through = Some(ctx.lib.cell(cell_i).name.clone());
                accepted_iteration(i);
                let remap = AcceptedRemap {
                    phase,
                    window: window_i,
                    allowed,
                    map_options: options.map_options,
                };
                return Some((cand, remap));
            }
            if fallback.is_none() {
                fallback = Some((i, window_i, allowed));
            }
        } else if cand.undetectable_count() > state.undetectable_count() {
            // Trend-up termination (Section III-B).
            worse_streak += 1;
            if worse_streak >= options.trend_stop {
                rsyn_observe::add("resynth.trend_stops", 1);
                break;
            }
        }
    }

    // No directly-feasible candidate: rescue the earliest accepting one.
    let (i, window_i, allowed) = fallback?;
    let cell_i = order[i];
    // Constraint miss: re-run Synthesize() timing-driven before resorting
    // to backtracking (as an iterative design flow would).
    if let Some(cand2) =
        evaluate_candidate(ctx, state, &window_i, &allowed, &MapOptions::delay(), evaluations)
    {
        if accept(&cand2) && constraints.satisfied_by(&cand2) {
            *banned_through = Some(ctx.lib.cell(cell_i).name.clone());
            accepted_iteration(i);
            let remap = AcceptedRemap {
                phase,
                window: window_i,
                allowed,
                map_options: MapOptions::delay(),
            };
            return Some((cand2, remap));
        }
    }
    if options.backtracking {
        if let Some((bt, win)) = backtrack(
            ctx,
            state,
            &window_i,
            &order[..=i],
            &allowed,
            constraints,
            accept,
            &options.map_options,
            evaluations,
        ) {
            *banned_through = Some(ctx.lib.cell(cell_i).name.clone());
            *used_backtracking = true;
            accepted_iteration(i);
            let remap =
                AcceptedRemap { phase, window: win, allowed, map_options: options.map_options };
            return Some((bt, remap));
        }
    }
    None
}

/// Counter bookkeeping for one accepted iteration whose winning candidate
/// banned the cell-order prefix `cell_0..=cell_i` (`i + 1` excluded cells).
fn accepted_iteration(i: usize) {
    rsyn_observe::add_many(&[("resynth.accepted", 1), ("resynth.cells_excluded", i as u64 + 1)]);
}

fn trace_of(state: &DesignState, phase: Phase, banned: Option<String>, bt: bool) -> IterationTrace {
    let mut sizes = state.clusters.size_distribution();
    sizes.truncate(10);
    IterationTrace {
        phase,
        banned_through: banned,
        used_backtracking: bt,
        undetectable: state.undetectable_count(),
        s_max: state.s_max_size(),
        cluster_sizes: sizes,
        delay_ps: state.delay_ps(),
        power_uw: state.power_uw(),
    }
}

/// Runs the two-phase procedure under one set of constraints.
pub fn resynthesize(
    original: &DesignState,
    ctx: &FlowContext,
    constraints: &DesignConstraints,
    options: &ResynthOptions,
) -> ResynthOutcome {
    resynthesize_from(
        original,
        ctx,
        constraints,
        options,
        ResynthCursor::start(),
        &mut |_, _, _| ControlFlow::Continue(()),
    )
}

/// [`resynthesize`] with an explicit starting cursor and an accepted-
/// iteration callback — the engine behind checkpoint/resume.
///
/// With [`ResynthCursor::start`] and a no-op callback this is exactly
/// [`resynthesize`]. A resumed run passes the cursor recorded in its
/// checkpoint (and the *replayed* state): phase 1 is skipped when the
/// cursor is already in phase 2, remaining iteration budgets shrink by the
/// iterations already performed, and phase 2 reuses the recorded `p2`
/// instead of recomputing it.
pub fn resynthesize_from(
    start_state: &DesignState,
    ctx: &FlowContext,
    constraints: &DesignConstraints,
    options: &ResynthOptions,
    cursor: ResynthCursor,
    on_accept: &mut OnAccept<'_>,
) -> ResynthOutcome {
    let _span = rsyn_observe::span("resynth");
    let mut state = start_state.clone();
    let mut trace = Vec::new();
    let mut evaluations = 0usize;

    // --- phase 1: break up the largest clusters ---------------------------
    if cursor.phase == Phase::One {
        let mut iter = cursor.iter_in_phase;
        while iter < options.max_iterations {
            let _zone = rsyn_observe::trace::zone("resynth.iter.p1", iter as u64);
            let s_pct = state.s_max_percent_of_f();
            if s_pct <= options.p1_percent || state.s_max_size() == 0 {
                break;
            }
            let c_sub = state.g_max();
            let window = state.gates_with_undetectable_internal(&c_sub);
            if window.is_empty() {
                break;
            }
            rsyn_observe::hist_add("resynth.window_gates", window.len() as u64);
            let old = state.clone();
            let accept = |cand: &DesignState| {
                cand.s_max_size() < old.s_max_size()
                    && cand.undetectable_count() <= old.undetectable_count()
            };
            let mut bt = false;
            let mut banned = None;
            match try_cells(
                ctx,
                &state,
                &window,
                constraints,
                &accept,
                options,
                Phase::One,
                &mut evaluations,
                &mut bt,
                &mut banned,
            ) {
                Some((next, remap)) => {
                    state = next;
                    iter += 1;
                    rsyn_observe::add("resynth.phase1.iterations", 1);
                    trace.push(trace_of(&state, Phase::One, banned, bt));
                    let next_cursor =
                        ResynthCursor { phase: Phase::One, iter_in_phase: iter, p2: None };
                    if on_accept(&state, &remap, &next_cursor).is_break() {
                        return ResynthOutcome { state, trace, full_evaluations: evaluations };
                    }
                }
                None => break,
            }
        }
    }

    // --- phase 2: reduce U across the whole circuit -----------------------
    let p2 = match (cursor.phase, cursor.p2) {
        (Phase::Two, Some(p2)) => p2,
        _ => options.p1_percent.max(state.s_max_percent_of_f()),
    };
    let mut iter = if cursor.phase == Phase::Two { cursor.iter_in_phase } else { 0 };
    while iter < options.max_iterations {
        let _zone = rsyn_observe::trace::zone("resynth.iter.p2", iter as u64);
        if state.undetectable_count() == 0 {
            break;
        }
        let c_sub = state.g_u();
        let window = state.gates_with_undetectable_internal(&c_sub);
        if window.is_empty() {
            break;
        }
        rsyn_observe::hist_add("resynth.window_gates", window.len() as u64);
        let old = state.clone();
        let accept = |cand: &DesignState| {
            cand.undetectable_count() < old.undetectable_count()
                && cand.s_max_percent_of_f() <= p2 + 1e-9
        };
        let mut bt = false;
        let mut banned = None;
        match try_cells(
            ctx,
            &state,
            &window,
            constraints,
            &accept,
            options,
            Phase::Two,
            &mut evaluations,
            &mut bt,
            &mut banned,
        ) {
            Some((next, remap)) => {
                state = next;
                iter += 1;
                rsyn_observe::add("resynth.phase2.iterations", 1);
                trace.push(trace_of(&state, Phase::Two, banned, bt));
                let next_cursor =
                    ResynthCursor { phase: Phase::Two, iter_in_phase: iter, p2: Some(p2) };
                if on_accept(&state, &remap, &next_cursor).is_break() {
                    return ResynthOutcome { state, trace, full_evaluations: evaluations };
                }
            }
            None => break,
        }
    }

    ResynthOutcome { state, trace, full_evaluations: evaluations }
}

/// Result of the outer `q` sweep.
#[derive(Clone, Debug)]
pub struct QSweepOutcome {
    /// States after each `q` (cumulative: `q` runs on top of `q − 1`).
    pub per_q: Vec<(u32, DesignState)>,
    /// The reported `q` (largest coverage; smallest `q` on ties).
    pub chosen_q: u32,
    /// Combined iteration trace across the sweep.
    pub trace: Vec<IterationTrace>,
    /// Wall-clock seconds spent in the sweep.
    pub sweep_seconds: f64,
    /// Wall-clock seconds of one baseline analysis (synthesis-free
    /// `PDesign()` + test generation), for the paper's `Rtime` column.
    pub baseline_seconds: f64,
    /// Total full `PDesign()`+ATPG candidate evaluations across the sweep.
    pub full_evaluations: usize,
}

impl QSweepOutcome {
    /// The chosen final state.
    ///
    /// # Panics
    ///
    /// Panics if the sweep recorded no states (cannot happen via
    /// [`run_q_sweep`]).
    pub fn final_state(&self) -> &DesignState {
        &self.per_q.iter().find(|(q, _)| *q == self.chosen_q).expect("chosen q was swept").1
    }

    /// The paper's `Rtime`: sweep runtime relative to one base iteration.
    pub fn relative_runtime(&self) -> f64 {
        if self.baseline_seconds <= 0.0 {
            return 0.0;
        }
        self.sweep_seconds / self.baseline_seconds
    }
}

/// Sweeps `q = 0..=max_q` in steps of 1%, applying each relaxation on top
/// of the previous solution, and picks the `q` with the best coverage.
pub fn run_q_sweep(
    original: &DesignState,
    ctx: &FlowContext,
    options: &ResynthOptions,
    max_q: u32,
) -> QSweepOutcome {
    run_q_sweep_stepped(original, ctx, options, max_q, 1)
}

/// [`run_q_sweep`] with a custom `q` step (used for scale-adjusted budgets
/// where stepping by 1% would be needlessly slow).
pub fn run_q_sweep_stepped(
    original: &DesignState,
    ctx: &FlowContext,
    options: &ResynthOptions,
    max_q: u32,
    step: u32,
) -> QSweepOutcome {
    let _span = rsyn_observe::span("qsweep");
    // Baseline runtime: one re-analysis of the original netlist.
    let t0 = Instant::now();
    let _ = DesignState::analyze(original.nl.clone(), ctx, None);
    let baseline_seconds = t0.elapsed().as_secs_f64();

    let step = step.max(1);
    let t1 = Instant::now();
    let mut current = original.clone();
    let mut per_q = Vec::new();
    let mut trace = Vec::new();
    let mut full_evaluations = 0usize;
    let mut q = 0u32;
    loop {
        let constraints = DesignConstraints::from_original(original, q as f64);
        let out = resynthesize(&current, ctx, &constraints, options);
        current = out.state;
        trace.extend(out.trace);
        full_evaluations += out.full_evaluations;
        per_q.push((q, current.clone()));
        if q >= max_q {
            break;
        }
        q = (q + step).min(max_q);
    }
    let sweep_seconds = t1.elapsed().as_secs_f64();
    let mut chosen_q = 0u32;
    let mut best_cov = f64::NEG_INFINITY;
    for (q, s) in &per_q {
        if s.coverage() > best_cov + 1e-12 {
            best_cov = s.coverage();
            chosen_q = *q;
        }
    }
    QSweepOutcome { per_q, chosen_q, trace, sweep_seconds, baseline_seconds, full_evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsyn_circuits::build_benchmark_with;
    use rsyn_netlist::Library;

    fn setup(name: &str) -> (FlowContext, DesignState) {
        let lib = Library::osu018();
        let ctx = FlowContext::new(lib.clone());
        let nl = build_benchmark_with(name, &ctx.lib, &ctx.mapper).unwrap();
        let state = DesignState::analyze(nl, &ctx, None).unwrap();
        (ctx, state)
    }

    #[test]
    fn resynthesis_reduces_undetectable_faults() {
        let (ctx, original) = setup("sparc_tlu");
        let u0 = original.undetectable_count();
        assert!(u0 > 0, "original must have undetectable faults");
        let constraints = DesignConstraints::from_original(&original, 5.0);
        let out = resynthesize(&original, &ctx, &constraints, &ResynthOptions::default());
        assert!(
            out.state.undetectable_count() < u0,
            "U {} -> {}",
            u0,
            out.state.undetectable_count()
        );
        assert!(out.state.coverage() > original.coverage());
        assert!(!out.trace.is_empty(), "at least one accepted iteration");
        // Constraints hold.
        assert!(constraints.satisfied_by(&out.state));
        // Netlist is still valid and functional structure preserved.
        out.state.nl.validate().unwrap();
    }

    #[test]
    fn resynthesis_shrinks_the_largest_cluster() {
        let (ctx, original) = setup("sparc_ifu");
        let constraints = DesignConstraints::from_original(&original, 5.0);
        let out = resynthesize(&original, &ctx, &constraints, &ResynthOptions::default());
        assert!(
            out.state.s_max_size() <= original.s_max_size(),
            "S_max {} -> {}",
            original.s_max_size(),
            out.state.s_max_size()
        );
    }

    #[test]
    fn trace_is_monotone_in_u_within_phase2() {
        let (ctx, original) = setup("sparc_tlu");
        let constraints = DesignConstraints::from_original(&original, 5.0);
        let out = resynthesize(&original, &ctx, &constraints, &ResynthOptions::default());
        let phase2: Vec<&IterationTrace> =
            out.trace.iter().filter(|t| t.phase == Phase::Two).collect();
        for w in phase2.windows(2) {
            assert!(w[1].undetectable < w[0].undetectable, "phase 2 accepts only U decreases");
        }
    }

    #[test]
    fn q_sweep_picks_best_coverage() {
        let (ctx, original) = setup("sparc_tlu");
        let sweep = run_q_sweep(&original, &ctx, &ResynthOptions::default(), 2);
        assert_eq!(sweep.per_q.len(), 3);
        let final_cov = sweep.final_state().coverage();
        for (_, s) in &sweep.per_q {
            assert!(final_cov >= s.coverage() - 1e-12);
        }
        assert!(sweep.relative_runtime() > 0.0);
    }
}
