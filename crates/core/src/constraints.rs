//! Design constraints: critical-path delay, power, and die area.
//!
//! The paper keeps the die area fixed at the original floorplan and allows
//! at most `q`% increase in delay and power (`q` swept from 0 to 5).

use rsyn_pdesign::Floorplan;

use crate::flow::DesignState;

/// Budgets a resynthesized design must meet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignConstraints {
    /// Maximum critical-path delay in ps.
    pub max_delay_ps: f64,
    /// Maximum total power in µW.
    pub max_power_uw: f64,
    /// The fixed floorplan (die area never grows).
    pub floorplan: Floorplan,
    /// The `q` these budgets correspond to (percent).
    pub q_percent: f64,
}

impl DesignConstraints {
    /// Derives constraints from the original design with relaxation `q`
    /// percent on delay and power.
    pub fn from_original(original: &DesignState, q_percent: f64) -> Self {
        let relax = 1.0 + q_percent / 100.0;
        Self {
            max_delay_ps: original.delay_ps() * relax,
            max_power_uw: original.power_uw() * relax,
            floorplan: original.pd.placement.floorplan(),
            q_percent,
        }
    }

    /// True when `state` meets all three budgets. (Area is enforced
    /// structurally: placement into the fixed floorplan fails when the
    /// cells no longer fit, so any analysed state already fits.)
    pub fn satisfied_by(&self, state: &DesignState) -> bool {
        state.delay_ps() <= self.max_delay_ps + 1e-9 && state.power_uw() <= self.max_power_uw + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowContext;
    use rsyn_netlist::{Library, Netlist};

    fn small_state(ctx: &FlowContext) -> DesignState {
        let lib = &ctx.lib;
        let mut nl = Netlist::new("t", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut nets = vec![a, b];
        let nand = lib.cell_id("NAND2X1").unwrap();
        for i in 0..20 {
            let y = nl.add_net();
            nl.add_gate(
                format!("g{i}"),
                nand,
                &[nets[i % nets.len()], nets[(i + 1) % nets.len()]],
                &[y],
            )
            .unwrap();
            nets.push(y);
        }
        let last = *nets.last().unwrap();
        nl.mark_output(last);
        DesignState::analyze(nl, ctx, None).unwrap()
    }

    #[test]
    fn original_satisfies_q0() {
        let ctx = FlowContext::new(Library::osu018());
        let state = small_state(&ctx);
        let c = DesignConstraints::from_original(&state, 0.0);
        assert!(c.satisfied_by(&state));
        assert_eq!(c.q_percent, 0.0);
    }

    #[test]
    fn q_relaxes_budgets() {
        let ctx = FlowContext::new(Library::osu018());
        let state = small_state(&ctx);
        let c0 = DesignConstraints::from_original(&state, 0.0);
        let c5 = DesignConstraints::from_original(&state, 5.0);
        assert!(c5.max_delay_ps > c0.max_delay_ps);
        assert!((c5.max_delay_ps / c0.max_delay_ps - 1.05).abs() < 1e-9);
        assert!((c5.max_power_uw / c0.max_power_uw - 1.05).abs() < 1e-9);
    }
}
