//! One full design analysis: `Synthesize()` output → `PDesign()` → DFM
//! scan → fault translation → ATPG → clustering, bundled as a
//! [`DesignState`] snapshot the resynthesis procedure iterates on.

use std::sync::Arc;

use rsyn_atpg::engine::{run_atpg, AtpgOptions, AtpgResult};
use rsyn_atpg::fault::Fault;
use rsyn_atpg::incremental::{run_atpg_incremental, PreviousEvaluation};
use rsyn_cluster::{cluster_faults, Clusters};
use rsyn_dfm::{extract_faults, GuidelineSet, InternalCatalog};
use rsyn_logic::Mapper;
use rsyn_netlist::{GateId, Library, Netlist};
use rsyn_pdesign::flow::{physical_design, physical_design_in, PhysicalDesign};
use rsyn_pdesign::place::PlaceError;
use rsyn_pdesign::{Floorplan, Placement};

/// Immutable tooling shared across all resynthesis iterations.
#[derive(Debug)]
pub struct FlowContext {
    /// The standard-cell library.
    pub lib: Arc<Library>,
    /// Prebuilt technology mapper.
    pub mapper: Mapper,
    /// The DFM guideline set.
    pub guidelines: GuidelineSet,
    /// Per-cell internal defect catalogs.
    pub catalog: InternalCatalog,
    /// ATPG options. `atpg.threads` controls the fault-sharded worker pool
    /// (0 = available parallelism); results are thread-count independent.
    pub atpg: AtpgOptions,
    /// Master seed for physical design.
    pub seed: u64,
    /// Whether candidate re-evaluations use the cone-of-influence
    /// incremental ATPG path instead of re-running the full fault set.
    pub incremental: bool,
}

impl FlowContext {
    /// Creates the context with default options and the fixed master seed.
    pub fn new(lib: Arc<Library>) -> Self {
        let mapper = Mapper::new(&lib);
        let guidelines = GuidelineSet::standard();
        let catalog = InternalCatalog::build(&lib);
        Self {
            lib,
            mapper,
            guidelines,
            catalog,
            atpg: AtpgOptions::default(),
            seed: 0xDA7E,
            incremental: true,
        }
    }

    /// Returns the context with an explicit ATPG worker-thread count
    /// (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.atpg.threads = threads;
        self
    }
}

/// A fully analysed design snapshot.
#[derive(Clone, Debug)]
pub struct DesignState {
    /// The gate-level netlist.
    pub nl: Netlist,
    /// Physical design artifacts (placement, layout, timing, power).
    pub pd: PhysicalDesign,
    /// The DFM fault set `F`.
    pub faults: Vec<Fault>,
    /// ATPG outcome over `F`.
    pub atpg: AtpgResult,
    /// Clusters of the undetectable faults `U`.
    pub clusters: Clusters,
}

impl DesignState {
    /// Analyses a netlist. With `fixed` set, physical design runs inside
    /// the given floorplan, optionally reusing a previous placement
    /// incrementally.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] when the netlist does not fit the floorplan
    /// (a die-area constraint violation).
    pub fn analyze(
        nl: Netlist,
        ctx: &FlowContext,
        fixed: Option<(Floorplan, Option<&Placement>)>,
    ) -> Result<Self, PlaceError> {
        let _span = rsyn_observe::span("flow.analyze");
        rsyn_observe::add("flow.analyses", 1);
        let pd = match fixed {
            None => physical_design(&nl, ctx.seed)?,
            Some((fp, prev)) => physical_design_in(&nl, fp, prev, ctx.seed)?,
        };
        let faults = extract_faults(&nl, &pd.layout, &ctx.guidelines, &ctx.catalog);
        let view = nl.comb_view().expect("valid netlist");
        let atpg = run_atpg(&nl, &view, &faults, &ctx.atpg);
        let undetectable = atpg.undetectable_indices();
        let clusters = cluster_faults(&nl, &faults, &undetectable);
        Ok(Self { nl, pd, faults, atpg, clusters })
    }

    /// Like [`DesignState::analyze`], but reuses the ATPG verdicts of a
    /// previous analysis for every fault outside the cone of influence of
    /// `changed_gates` (the gates a resynthesis candidate remapped). This
    /// is the fast path of the candidate-evaluation inner loop: only the
    /// faults the remap can affect go back through fault simulation and
    /// PODEM.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] when the netlist does not fit the floorplan
    /// (a die-area constraint violation).
    pub fn analyze_incremental(
        nl: Netlist,
        ctx: &FlowContext,
        fixed: Option<(Floorplan, Option<&Placement>)>,
        prev: &DesignState,
        changed_gates: &[GateId],
    ) -> Result<Self, PlaceError> {
        let _span = rsyn_observe::span("flow.analyze_incremental");
        rsyn_observe::add("flow.analyses_incremental", 1);
        let pd = match fixed {
            None => physical_design(&nl, ctx.seed)?,
            Some((fp, prev_pl)) => physical_design_in(&nl, fp, prev_pl, ctx.seed)?,
        };
        let faults = extract_faults(&nl, &pd.layout, &ctx.guidelines, &ctx.catalog);
        let view = nl.comb_view().expect("valid netlist");
        let previous = PreviousEvaluation { faults: &prev.faults, result: &prev.atpg };
        let atpg = run_atpg_incremental(&nl, &view, &faults, &ctx.atpg, &previous, changed_gates);
        let undetectable = atpg.undetectable_indices();
        let clusters = cluster_faults(&nl, &faults, &undetectable);
        Ok(Self { nl, pd, faults, atpg, clusters })
    }

    /// Total fault count `F`.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Undetectable fault count `U`.
    pub fn undetectable_count(&self) -> usize {
        self.atpg.undetectable_count()
    }

    /// Undetectable *internal* fault count.
    pub fn undetectable_internal_count(&self) -> usize {
        self.atpg
            .undetectable_indices()
            .into_iter()
            .filter(|&i| self.faults[i].is_internal())
            .count()
    }

    /// Paper coverage metric `1 − U/F`.
    pub fn coverage(&self) -> f64 {
        self.atpg.coverage()
    }

    /// `|S_max|`.
    pub fn s_max_size(&self) -> usize {
        self.clusters.s_max_size()
    }

    /// Percentage of **all** faults that are in `S_max` (Table II's
    /// `%Smax_all`).
    pub fn s_max_percent_of_f(&self) -> f64 {
        if self.faults.is_empty() {
            return 0.0;
        }
        100.0 * self.s_max_size() as f64 / self.faults.len() as f64
    }

    /// Number of internal faults inside `S_max` (Table II's `Smax_I`).
    pub fn s_max_internal(&self) -> usize {
        self.clusters
            .s_max_fault_indices()
            .into_iter()
            .filter(|&i| self.faults[i].is_internal())
            .count()
    }

    /// `G_max`: gates corresponding to the largest cluster.
    pub fn g_max(&self) -> Vec<GateId> {
        self.clusters.g_max()
    }

    /// `G_U`: gates corresponding to all undetectable faults.
    pub fn g_u(&self) -> Vec<GateId> {
        self.clusters.gates_of_all()
    }

    /// Gates in `sub` that have at least one undetectable *internal* fault
    /// (`C_sub − G_zero` of Section III-B: only these are remapped).
    pub fn gates_with_undetectable_internal(&self, sub: &[GateId]) -> Vec<GateId> {
        use std::collections::HashSet;
        let mut hot: HashSet<GateId> = HashSet::new();
        for i in self.atpg.undetectable_indices() {
            if let rsyn_atpg::fault::FaultOrigin::Internal { gate } = self.faults[i].origin {
                hot.insert(gate);
            }
        }
        sub.iter().copied().filter(|g| hot.contains(g)).collect()
    }

    /// Critical-path delay in ps.
    pub fn delay_ps(&self) -> f64 {
        self.pd.timing.critical_delay_ps
    }

    /// Total power in µW.
    pub fn power_uw(&self) -> f64 {
        self.pd.power.total_uw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_circuit(ctx: &FlowContext) -> Netlist {
        let lib = &ctx.lib;
        let mut nl = Netlist::new("t", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let mut nets = vec![a, b, c];
        let aoi = lib.cell_id("AOI22X1").unwrap();
        let nand = lib.cell_id("NAND2X1").unwrap();
        for i in 0..30 {
            let y = nl.add_net();
            if i % 2 == 0 {
                let w = [
                    nets[i % nets.len()],
                    nets[(i + 1) % nets.len()],
                    nets[(i + 2) % nets.len()],
                    nets[(i * 3 + 1) % nets.len()],
                ];
                nl.add_gate(format!("g{i}"), aoi, &w, &[y]).unwrap();
            } else {
                nl.add_gate(
                    format!("g{i}"),
                    nand,
                    &[nets[i % nets.len()], nets[(i + 2) % nets.len()]],
                    &[y],
                )
                .unwrap();
            }
            nets.push(y);
        }
        let last = *nets.last().unwrap();
        nl.mark_output(last);
        nl
    }

    #[test]
    fn analyze_produces_consistent_state() {
        let ctx = FlowContext::new(Library::osu018());
        let nl = tiny_circuit(&ctx);
        let state = DesignState::analyze(nl, &ctx, None).unwrap();
        assert!(state.fault_count() > 0);
        assert!(state.coverage() <= 1.0);
        assert_eq!(state.undetectable_count(), state.atpg.undetectable_indices().len());
        assert!(state.s_max_size() <= state.undetectable_count());
        assert!(state.delay_ps() > 0.0);
        assert!(state.power_uw() > 0.0);
        // G_max gates all appear in G_U.
        let gu = state.g_u();
        for g in state.g_max() {
            assert!(gu.contains(&g));
        }
    }

    #[test]
    fn incremental_reanalysis_matches_full() {
        let ctx = FlowContext::new(Library::osu018());
        let nl = tiny_circuit(&ctx);
        let s1 = DesignState::analyze(nl.clone(), &ctx, None).unwrap();
        let fp = s1.pd.placement.floorplan();
        // Unchanged netlist, empty changed set: the incremental path must
        // reproduce the full analysis verdicts without re-running them.
        let s2 = DesignState::analyze_incremental(
            nl.clone(),
            &ctx,
            Some((fp, Some(&s1.pd.placement))),
            &s1,
            &[],
        )
        .unwrap();
        let full = DesignState::analyze(nl, &ctx, Some((fp, Some(&s1.pd.placement)))).unwrap();
        assert_eq!(s2.fault_count(), full.fault_count());
        assert_eq!(s2.undetectable_count(), full.undetectable_count());
        assert_eq!(s2.atpg.detected_count(), full.atpg.detected_count());
        assert_eq!(s2.s_max_size(), full.s_max_size());
    }

    #[test]
    fn fixed_floorplan_reanalysis_is_stable() {
        let ctx = FlowContext::new(Library::osu018());
        let nl = tiny_circuit(&ctx);
        let s1 = DesignState::analyze(nl.clone(), &ctx, None).unwrap();
        let fp = s1.pd.placement.floorplan();
        let s2 = DesignState::analyze(nl, &ctx, Some((fp, Some(&s1.pd.placement)))).unwrap();
        assert_eq!(s1.fault_count(), s2.fault_count());
        assert_eq!(s1.undetectable_count(), s2.undetectable_count());
    }
}
