//! Property tests for the resilient flow driver ([`rsyn_core::run`]).
//!
//! Under an arbitrary deterministic injection plan — a forced `PDesign()`
//! rejection, a delay-inflated evaluation, forced PODEM aborts, and a
//! forced worker-shard failure — the flow must:
//!
//! * never panic (every failure is either absorbed or a typed
//!   [`FlowError`](rsyn_resilience::FlowError)),
//! * return a netlist that still validates, and
//! * preserve the circuit function: the final netlist is logically
//!   equivalent to the seed (`Synthesize()` is function-preserving, and no
//!   recovery path may corrupt that).
//!
//! Kept to a single `#[test]` because the injection plan and the
//! observability registry are process-global.

use proptest::prelude::*;
use rsyn_circuits::build_benchmark_with;
use rsyn_core::flow::FlowContext;
use rsyn_core::run::{run, FlowOptions};
use rsyn_logic::{check_equivalence, EquivResult};
use rsyn_netlist::Library;
use rsyn_resilience::inject;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// An injected-failure flow run never panics and never changes the
    /// circuit function.
    #[test]
    fn injected_flow_never_panics_and_preserves_function(
        reject in 1u64..4,
        inflate in 1u64..5,
        abort_run in 0u64..2,
        shard in 0u64..3,
    ) {
        let lib = Library::osu018();
        let ctx = FlowContext::new(lib);
        let seed_nl = build_benchmark_with("sparc_ffu", &ctx.lib, &ctx.mapper)
            .expect("benchmark");

        let mut options = FlowOptions::new("sparc_ffu", "props");
        // One accepted iteration per phase keeps each case affordable while
        // still exercising acceptance, rejection, and recovery paths.
        options.resynth.max_iterations = 1;

        let plan = inject::InjectionPlan::new()
            .reject_pdesign(reject)
            .inflation_percent(250)
            .inflate_pdesign(inflate)
            .abort_podem(abort_run, 0)
            .abort_podem(abort_run, 1)
            .fail_shard(0, shard);
        let armed = inject::arm(plan);
        let report = run(seed_nl.clone(), &ctx, &options);
        drop(armed);

        let report = match report {
            Ok(r) => r,
            Err(e) => return Err(format!("flow returned a fatal error: {e}")),
        };
        report
            .state
            .nl
            .validate()
            .map_err(|e| format!("final netlist no longer validates: {e}"))?;
        match check_equivalence(&seed_nl, &report.state.nl, 512, 0xD5A1) {
            EquivResult::Equivalent | EquivResult::ProbablyEquivalent { .. } => {}
            EquivResult::NotEquivalent { counterexample } => {
                return Err(format!(
                    "final netlist diverges from the seed on {counterexample:?}"
                ));
            }
            EquivResult::InterfaceMismatch => {
                return Err("final netlist changed its PI/PO interface".to_string());
            }
        }
    }
}
