//! Developer utility: breaks one full design-analysis evaluation into its
//! stages (placement, DFM scan, fault extraction, ATPG with and without
//! compaction) and prints wall-clock timings — useful when tuning the
//! resynthesis loop's evaluation cost.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin profile_eval [circuit]`

use rsyn_atpg::engine::{run_atpg, AtpgOptions};
use rsyn_bench::{analyzed, context, write_manifest};
use rsyn_dfm::{extract_faults, scan_layout};
use rsyn_observe::manifest::Run;
use rsyn_pdesign::flow::physical_design_in;
use std::time::Instant;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "tv80".to_string());
    let ctx = context();
    let mut run = Run::start("profile_eval", ctx.seed);
    run.record_threads(0, ctx.atpg.effective_threads());
    let t0 = Instant::now();
    let state = analyzed(&circuit, &ctx);
    println!(
        "analyze total: {:.2}s (F={} U={} tests={})",
        t0.elapsed().as_secs_f64(),
        state.fault_count(),
        state.undetectable_count(),
        state.atpg.tests.len()
    );
    // Break down one re-analysis.
    let fp = state.pd.placement.floorplan();
    let t = Instant::now();
    let pd = physical_design_in(&state.nl, fp, Some(&state.pd.placement), ctx.seed).unwrap();
    println!("pdesign: {:.2}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let v = scan_layout(&pd.layout, &ctx.guidelines);
    println!("scan: {:.2}s ({} violations)", t.elapsed().as_secs_f64(), v.len());
    let t = Instant::now();
    let faults = extract_faults(&state.nl, &pd.layout, &ctx.guidelines, &ctx.catalog);
    println!("extract: {:.2}s ({} faults)", t.elapsed().as_secs_f64(), faults.len());
    let view = state.nl.comb_view().unwrap();
    let t = Instant::now();
    let r1 = run_atpg(&state.nl, &view, &faults, &AtpgOptions::default());
    println!(
        "atpg(compact): {:.2}s U={} T={}",
        t.elapsed().as_secs_f64(),
        r1.undetectable_count(),
        r1.tests.len()
    );
    let t = Instant::now();
    let r2 =
        run_atpg(&state.nl, &view, &faults, &AtpgOptions { compact: false, ..Default::default() });
    println!(
        "atpg(nocompact): {:.2}s U={} T={}",
        t.elapsed().as_secs_f64(),
        r2.undetectable_count(),
        r2.tests.len()
    );
    run.result(format!("{circuit}.faults"), faults.len().to_string());
    run.result(format!("{circuit}.undetectable"), r1.undetectable_count().to_string());
    run.result(format!("{circuit}.tests.compact"), r1.tests.len().to_string());
    run.result(format!("{circuit}.tests.nocompact"), r2.tests.len().to_string());
    write_manifest(run);
}
