//! E6 — verifies the Section III-B observation that motivates the trend-up
//! termination: as more cells are excluded (prefix `cell_0..=cell_i` of
//! the internal-fault order), the number of undetectable faults in the
//! resynthesized circuit first goes *down* (fewer internal faults) and
//! then *up* (nets internal to large cells become external wiring).
//!
//! Usage: `cargo run --release -p rsyn-bench --bin sweep_exclusion [circuit]`

use rsyn_bench::{analyzed, context, write_manifest};
use rsyn_core::flow::DesignState;
use rsyn_logic::map::MapOptions;
use rsyn_logic::Window;
use rsyn_netlist::{CellClass, CellId};
use rsyn_observe::manifest::Run;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "sparc_exu".to_string());
    let ctx = context();
    let mut run = Run::start("sweep_exclusion", ctx.seed);
    run.record_threads(0, ctx.atpg.effective_threads());
    let original = analyzed(&circuit, &ctx);
    let order = ctx.catalog.cells_by_internal_faults(&ctx.lib);
    println!("exclusion-prefix sweep on {circuit} (whole-circuit remap per prefix)");
    println!(
        "{:<4} {:<12} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "i", "last banned", "gates", "F", "U", "U_In", "U_Ex"
    );
    println!(
        "{:<4} {:<12} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "-",
        "(original)",
        original.nl.gate_count(),
        original.fault_count(),
        original.undetectable_count(),
        original.undetectable_internal_count(),
        original.undetectable_count() - original.undetectable_internal_count()
    );
    for i in 0..order.len() {
        let allowed: Vec<CellId> = order[i + 1..]
            .iter()
            .copied()
            .filter(|&c| ctx.lib.cell(c).class == CellClass::Comb)
            .collect();
        let mut mask = vec![false; ctx.lib.len()];
        for &c in &allowed {
            mask[c.index()] = true;
        }
        if !ctx.mapper.is_complete(&mask) {
            println!(
                "{:<4} {:<12} (remaining subset incomplete; sweep ends)",
                i,
                ctx.lib.cell(order[i]).name
            );
            break;
        }
        let mut nl = original.nl.clone();
        let gates: Vec<_> = nl.gates().map(|(id, _)| id).collect();
        let window = Window::extract(&nl, &gates);
        if window
            .resynthesize_with(&mut nl, &ctx.mapper, &allowed, &MapOptions::blend(0.35))
            .is_err()
        {
            continue;
        }
        // The sweep remaps the whole circuit, which generally does not fit
        // the original floorplan (that is the resynthesis procedure's whole
        // point); refit the floorplan so the U trend itself is measurable.
        let Ok(state) = DesignState::analyze(nl, &ctx, None) else {
            println!("{:<4} {:<12} analysis failed", i, ctx.lib.cell(order[i]).name);
            continue;
        };
        let u_in = state.undetectable_internal_count();
        println!(
            "{:<4} {:<12} {:>8} {:>8} {:>8} {:>8} {:>9}",
            i,
            ctx.lib.cell(order[i]).name,
            state.nl.gate_count(),
            state.fault_count(),
            state.undetectable_count(),
            u_in,
            state.undetectable_count() - u_in
        );
        run.result(
            format!("{circuit}.prefix_{i}.undetectable"),
            state.undetectable_count().to_string(),
        );
    }
    run.result(format!("{circuit}.orig.undetectable"), original.undetectable_count().to_string());
    write_manifest(run);
}
