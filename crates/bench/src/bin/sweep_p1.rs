//! E7 — the paper's `p1` calibration (Section III-B): the phase-1
//! termination target balances how far phase 1 pushes the largest cluster
//! against how much work is left for phase 2. The paper settles on
//! `p1 = 1%`.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin sweep_p1 [circuit]`

use rsyn_bench::{analyzed, context, write_manifest};
use rsyn_core::constraints::DesignConstraints;
use rsyn_core::resynth::{resynthesize, Phase, ResynthOptions};
use rsyn_observe::manifest::Run;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "sparc_exu".to_string());
    let ctx = context();
    let mut run = Run::start("sweep_p1", ctx.seed);
    run.record_threads(0, ctx.atpg.effective_threads());
    let original = analyzed(&circuit, &ctx);
    let constraints = DesignConstraints::from_original(&original, 5.0);
    println!(
        "p1 sweep on {circuit} (q = 5%): original U = {}, Smax = {} ({:.2}% of F)",
        original.undetectable_count(),
        original.s_max_size(),
        original.s_max_percent_of_f()
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>11} {:>9}",
        "p1 %", "iters-1", "iters-2", "U", "Smax", "%Smax_all", "evals"
    );
    for p1 in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let options = ResynthOptions { p1_percent: p1, ..Default::default() };
        let out = resynthesize(&original, &ctx, &constraints, &options);
        let i1 = out.trace.iter().filter(|t| t.phase == Phase::One).count();
        let i2 = out.trace.iter().filter(|t| t.phase == Phase::Two).count();
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>8} {:>10.2}% {:>9}",
            p1,
            i1,
            i2,
            out.state.undetectable_count(),
            out.state.s_max_size(),
            out.state.s_max_percent_of_f(),
            out.full_evaluations
        );
        run.result(
            format!("{circuit}.p1_{p1}.undetectable"),
            out.state.undetectable_count().to_string(),
        );
        run.result(format!("{circuit}.p1_{p1}.smax"), out.state.s_max_size().to_string());
    }
    write_manifest(run);
}
