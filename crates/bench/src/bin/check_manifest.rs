//! CI gate over run manifests (see `rsyn_observe::manifest`).
//!
//! Two modes:
//!
//! * **Baseline diff** (default): `check_manifest <baseline> <current>`
//!   compares a freshly produced manifest against a checked-in baseline —
//!   exact equality on schema, name, seed, every counter and every result;
//!   timings shared by both files must stay within a ratio band
//!   (`--timing-tolerance R`, default 1000, i.e. only catastrophic drift
//!   fails; pass `--no-timings` to skip them entirely). Repeatable
//!   `--band PREFIX=R` flags tighten (or loosen) the band for every
//!   timing key starting with `PREFIX` — the longest matching prefix wins
//!   — which is how the perf-trajectory gate holds `span.*` wall times to
//!   a configured regression band while leaving noisier keys on the
//!   catastrophic-only default.
//! * **Determinism**: `check_manifest --determinism <a> <b>` asserts the
//!   *stable* serialisations of two manifests are byte-identical — the
//!   thread-count-independence gate (same run at `--threads 1` vs `N`).
//!   When both files are flow *checkpoints* (`"kind": "checkpoint"`, see
//!   `rsyn_resilience::Checkpoint`) the raw bytes are compared instead:
//!   checkpoints carry no volatile section, so a resumed run must
//!   re-produce them exactly.
//!
//! Exit status: 0 on pass; 1 with one line per mismatch on stderr on fail;
//! 2 on usage or I/O errors.

use std::process::ExitCode;

use rsyn_observe::manifest::{diff, DiffConfig, Manifest};
use rsyn_resilience::Checkpoint;

/// True when the file at `path` parses as a flow checkpoint.
fn is_checkpoint(src: &str, path: &str) -> bool {
    Checkpoint::parse(src, path).is_ok()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: check_manifest [--timing-tolerance R | --no-timings] [--band PREFIX=R ...] \
         [--ignore PREFIX ...] [--require NAME ...] <baseline> <current>\n\
         \u{20}      check_manifest --determinism [--ignore PREFIX ...] [--require NAME ...] \
         <a> <b>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = DiffConfig::default();
    let mut determinism = false;
    if let Some(i) = args.iter().position(|a| a == "--determinism") {
        determinism = true;
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--no-timings") {
        cfg.compare_timings = false;
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--timing-tolerance") {
        if i + 1 >= args.len() {
            return usage();
        }
        match args[i + 1].parse::<f64>() {
            Ok(r) if r >= 1.0 => cfg.timing_tolerance = r,
            _ => {
                eprintln!("--timing-tolerance must be a ratio >= 1");
                return ExitCode::from(2);
            }
        }
        args.drain(i..=i + 1);
    }
    // `--ignore PREFIX` strips matching counters from both manifests before
    // any comparison — the warm-cache gate uses it to compare a cold and a
    // warm run, which agree on everything except their `cache.*` traffic.
    let mut ignores: Vec<String> = Vec::new();
    while let Some(i) = args.iter().position(|a| a == "--ignore") {
        if i + 1 >= args.len() {
            return usage();
        }
        ignores.push(args[i + 1].clone());
        args.drain(i..=i + 1);
    }
    // `--require NAME` asserts the *current* (second) manifest carries a
    // non-zero counter NAME — how the gate proves a warm run actually hit.
    let mut requires: Vec<String> = Vec::new();
    while let Some(i) = args.iter().position(|a| a == "--require") {
        if i + 1 >= args.len() {
            return usage();
        }
        requires.push(args[i + 1].clone());
        args.drain(i..=i + 1);
    }
    while let Some(i) = args.iter().position(|a| a == "--band") {
        if i + 1 >= args.len() {
            return usage();
        }
        let spec = args[i + 1].clone();
        let Some((prefix, ratio)) = spec.split_once('=') else {
            eprintln!("--band expects PREFIX=RATIO, got `{spec}`");
            return ExitCode::from(2);
        };
        match ratio.parse::<f64>() {
            Ok(r) if r >= 1.0 => cfg.bands.push((prefix.to_string(), r)),
            _ => {
                eprintln!("--band ratio must be >= 1, got `{ratio}`");
                return ExitCode::from(2);
            }
        }
        args.drain(i..=i + 1);
    }
    let [a, b] = args.as_slice() else {
        return usage();
    };

    if determinism {
        // Checkpoints have no volatile section, so their determinism gate
        // is raw byte equality rather than the stable-manifest projection.
        let (raw_a, raw_b) = match (std::fs::read_to_string(a), std::fs::read_to_string(b)) {
            (Ok(l), Ok(r)) => (l, r),
            (l, r) => {
                for e in [l.err(), r.err()].into_iter().flatten() {
                    eprintln!("error: {e}");
                }
                return ExitCode::from(2);
            }
        };
        if is_checkpoint(&raw_a, a) && is_checkpoint(&raw_b, b) {
            if raw_a == raw_b {
                println!("determinism ok: checkpoints {a} and {b} are byte-identical");
                return ExitCode::SUCCESS;
            }
            eprintln!("determinism FAILED: checkpoints {a} and {b} differ");
            return ExitCode::FAILURE;
        }
    }

    let (mut left, mut right) = match (Manifest::read(a), Manifest::read(b)) {
        (Ok(l), Ok(r)) => (l, r),
        (l, r) => {
            for e in [l.err(), r.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };

    // Presence checks run against the raw current manifest, before any
    // `--ignore` stripping (the warm-cache gate requires `cache.hit` while
    // simultaneously ignoring the `cache.` prefix in the comparison).
    let mut missing = false;
    for name in &requires {
        let n = right.counters.get(name).copied().unwrap_or(0);
        if n == 0 {
            eprintln!("required counter `{name}` is absent or zero in {b}");
            missing = true;
        }
    }
    if missing {
        return ExitCode::FAILURE;
    }
    if !ignores.is_empty() {
        for m in [&mut left, &mut right] {
            m.counters.retain(|k, _| !ignores.iter().any(|p| k.starts_with(p)));
        }
    }

    if determinism {
        if left.stable_json() == right.stable_json() {
            println!("determinism ok: {a} and {b} agree on the stable manifest");
            return ExitCode::SUCCESS;
        }
        eprintln!("determinism FAILED: stable manifests differ between {a} and {b}");
        for e in diff(&left, &right, &DiffConfig { compare_timings: false, ..cfg }) {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }

    let errors = diff(&left, &right, &cfg);
    if errors.is_empty() {
        println!("manifest ok: {b} matches baseline {a}");
        return ExitCode::SUCCESS;
    }
    eprintln!("manifest check FAILED: {b} vs baseline {a}");
    for e in &errors {
        eprintln!("  {e}");
    }
    ExitCode::FAILURE
}
