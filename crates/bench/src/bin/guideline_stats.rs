//! Deck analysis: which DFM guidelines dominate the fault population and
//! the undetectable subset, per circuit — the diagnosis-oriented view of
//! the paper's companion work \[8\].
//!
//! Usage: `cargo run --release -p rsyn-bench --bin guideline_stats [circuit…]`

use rsyn_bench::{analyzed, context, write_manifest};
use rsyn_dfm::DeckReport;
use rsyn_observe::manifest::Run;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuits: Vec<String> =
        if args.is_empty() { vec!["sparc_exu".to_string(), "aes_core".to_string()] } else { args };
    let ctx = context();
    let mut run = Run::start("guideline_stats", ctx.seed);
    run.record_threads(0, ctx.atpg.effective_threads());
    for name in &circuits {
        let state = analyzed(name, &ctx);
        let report = DeckReport::build(&state.faults, &state.atpg.statuses);
        println!("== {name} ==");
        println!("{:<10} {:>8} {:>9} {:>13}", "category", "faults", "internal", "undetectable");
        for (cat, s) in report.per_category(&ctx.guidelines) {
            println!("{:<10} {:>8} {:>9} {:>13}", cat, s.faults, s.internal, s.undetectable);
            run.result(format!("{name}.{cat}.faults"), s.faults.to_string());
            run.result(format!("{name}.{cat}.undetectable"), s.undetectable.to_string());
        }
        println!("worst guidelines by undetectable faults:");
        for (id, s) in report.worst_guidelines(5) {
            let gname = ctx.guidelines.by_id(id).map(|g| g.name.clone()).unwrap_or_default();
            println!("  [{id:>2}] {gname:<50} U={} / F={}", s.undetectable, s.faults);
        }
        run.result(format!("{name}.faults"), state.fault_count().to_string());
        run.result(format!("{name}.undetectable"), state.undetectable_count().to_string());
    }
    write_manifest(run);
}
