//! E2 — regenerates the paper's **Table II** (the main result): for every
//! benchmark, the original design row and the resynthesized row obtained
//! with the largest `q` in `0..=max_q` that improves coverage.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin table2
//! [--max-q N] [--q-step N] [--threads N] [circuit…]`
//!
//! The table on stdout is byte-identical for any `--threads` value; a
//! `runtime:` provenance line per circuit goes to stderr.

use rsyn_bench::{analyzed, context_with_threads, parse_args, threads_flag, write_manifest};
use rsyn_core::report::{average_rows, RuntimeReport, Table2Row};
use rsyn_core::resynth::{run_q_sweep_stepped, ResynthOptions};
use rsyn_observe::manifest::Run;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = threads_flag(&mut args);
    let mut q_step = 1u32;
    if let Some(i) = args.iter().position(|a| a == "--q-step") {
        if i + 1 < args.len() {
            q_step = args[i + 1].parse().unwrap_or(1);
            args.drain(i..=i + 1);
        }
    }
    let (max_q, circuits) = parse_args(&args);
    let ctx = context_with_threads(threads);
    let mut run = Run::start("table2", ctx.seed);
    run.record_threads(threads, ctx.atpg.effective_threads());
    let options = ResynthOptions::default();

    println!(
        "TABLE II. EXPERIMENTAL RESULTS  (q swept 0..={max_q} step {q_step}, p1 = {}%)",
        options.p1_percent
    );
    println!("{}", Table2Row::header());
    let mut orig_rows = Vec::new();
    let mut resyn_rows = Vec::new();
    for name in &circuits {
        let original = analyzed(name, &ctx);
        let orig_row = Table2Row::original(name, &original);
        println!("{orig_row}");
        let sweep = run_q_sweep_stepped(&original, &ctx, &options, max_q, q_step);
        let resyn_row = Table2Row::resynthesized(name, &original, &sweep);
        println!("{resyn_row}");
        eprintln!("{name}: {}", RuntimeReport::of(&ctx, &sweep));
        let resyn = sweep.final_state();
        run.result(format!("{name}.orig.undetectable"), original.undetectable_count().to_string());
        run.result_f64(format!("{name}.orig.coverage"), original.coverage());
        run.result(format!("{name}.resyn.undetectable"), resyn.undetectable_count().to_string());
        run.result_f64(format!("{name}.resyn.coverage"), resyn.coverage());
        run.result(format!("{name}.chosen_q"), sweep.chosen_q.to_string());
        run.result(format!("{name}.full_evaluations"), sweep.full_evaluations.to_string());
        orig_rows.push(orig_row);
        resyn_rows.push(resyn_row);
    }
    if orig_rows.len() > 1 {
        println!("{}", average_rows("orig", &orig_rows));
        println!("{}", average_rows("resyn", &resyn_rows));
    }
    write_manifest(run);
}
