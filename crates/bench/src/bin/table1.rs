//! E1 — regenerates the paper's **Table I** (clustered undetectable
//! faults) for the four circuits the paper reports: aes_core, des_perf,
//! sparc_exu, sparc_fpu.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin table1 [--threads N] [circuit…]`

use rsyn_bench::{analyzed, context_with_threads, threads_flag};
use rsyn_circuits::TABLE1_BENCHMARKS;
use rsyn_core::report::Table1Row;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = threads_flag(&mut args);
    let circuits: Vec<String> = if args.is_empty() {
        TABLE1_BENCHMARKS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let ctx = context_with_threads(threads);
    eprintln!("runtime: threads={}", ctx.atpg.effective_threads());
    println!("TABLE I. CLUSTERED UNDETECTABLE FAULTS");
    println!("{}", Table1Row::header());
    for name in &circuits {
        let state = analyzed(name, &ctx);
        let row = Table1Row::of(name, &state);
        println!("{row}");
    }
}
