//! E1 — regenerates the paper's **Table I** (clustered undetectable
//! faults) for the four circuits the paper reports: aes_core, des_perf,
//! sparc_exu, sparc_fpu.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin table1 [--threads N] [circuit…]`

use rsyn_bench::{analyzed, context_with_threads, threads_flag, write_manifest};
use rsyn_circuits::TABLE1_BENCHMARKS;
use rsyn_core::report::Table1Row;
use rsyn_observe::manifest::Run;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = threads_flag(&mut args);
    let circuits: Vec<String> = if args.is_empty() {
        TABLE1_BENCHMARKS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let ctx = context_with_threads(threads);
    let mut run = Run::start("table1", ctx.seed);
    run.record_threads(threads, ctx.atpg.effective_threads());
    eprintln!("runtime: threads={}", ctx.atpg.effective_threads());
    println!("TABLE I. CLUSTERED UNDETECTABLE FAULTS");
    println!("{}", Table1Row::header());
    for name in &circuits {
        let state = analyzed(name, &ctx);
        let row = Table1Row::of(name, &state);
        println!("{row}");
        run.result(format!("{name}.faults"), state.fault_count().to_string());
        run.result(format!("{name}.undetectable"), state.undetectable_count().to_string());
        run.result(format!("{name}.smax"), state.s_max_size().to_string());
        run.result_f64(format!("{name}.coverage"), state.coverage());
    }
    write_manifest(run);
}
