//! E1 — regenerates the paper's **Table I** (clustered undetectable
//! faults) for the four circuits the paper reports: aes_core, des_perf,
//! sparc_exu, sparc_fpu.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin table1 [circuit…]`

use rsyn_bench::{analyzed, context};
use rsyn_circuits::TABLE1_BENCHMARKS;
use rsyn_core::report::Table1Row;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuits: Vec<String> = if args.is_empty() {
        TABLE1_BENCHMARKS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let ctx = context();
    println!("TABLE I. CLUSTERED UNDETECTABLE FAULTS");
    println!("{}", Table1Row::header());
    for name in &circuits {
        let state = analyzed(name, &ctx);
        let row = Table1Row::of(name, &state);
        println!("{row}");
    }
}
