//! E8 — the alternative the paper argues against (Section I, refs
//! \[14\]/\[15\]): instead of resynthesizing, generate *additional tests* for
//! the detectable faults adjacent to undetectable ones, so the uncovered
//! areas get more incidental coverage. The paper's point: for
//! DFM-guideline defects this requires "a significant number of additional
//! test patterns … an excessive increase in the size of the test set",
//! while resynthesis keeps the test count roughly flat.
//!
//! We implement the N-detect form: every fault adjacent to an undetectable
//! fault must be detected by at least N distinct tests.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin baseline_ndetect [circuit]`

use std::collections::HashSet;

use rsyn_atpg::engine::targets_of;
use rsyn_atpg::fault::FaultStatus;
use rsyn_atpg::podem::{Podem, PodemOutcome};
use rsyn_atpg::sim::FaultSim;
use rsyn_bench::{analyzed, context, write_manifest};
use rsyn_cluster::gates_of_fault;
use rsyn_netlist::LANE_WORDS;
use rsyn_observe::manifest::Run;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "sparc_exu".to_string());
    let ctx = context();
    let mut run = Run::start("baseline_ndetect", ctx.seed);
    run.record_threads(0, ctx.atpg.effective_threads());
    let state = analyzed(&circuit, &ctx);
    let view = state.nl.comb_view().unwrap();
    let base_tests = state.atpg.tests.len();

    // Gates touched by undetectable faults.
    let hot: HashSet<_> = state
        .atpg
        .undetectable_indices()
        .into_iter()
        .flat_map(|i| gates_of_fault(&state.nl, &state.faults[i]))
        .collect();
    // Detectable faults adjacent to those gates (sharing or driving them).
    let adjacent: Vec<usize> = state
        .faults
        .iter()
        .enumerate()
        .filter(|(i, _)| state.atpg.statuses[*i] == FaultStatus::Detected)
        .filter(|(_, f)| {
            gates_of_fault(&state.nl, f).iter().any(|g| {
                hot.contains(g)
                    || state.nl.fanout_gates(*g).iter().any(|s| hot.contains(s))
                    || state.nl.fanin_gates(*g).iter().any(|s| hot.contains(s))
            })
        })
        .map(|(i, _)| i)
        .collect();
    println!(
        "{circuit}: U = {}, adjacent detectable faults = {}, base test count = {base_tests}",
        state.undetectable_count(),
        adjacent.len()
    );
    println!("{:<4} {:>12} {:>10}", "N", "total tests", "vs base");

    let mut sim = FaultSim::new(&state.nl, &view);
    for n in [1usize, 3, 5] {
        // Count detections of each adjacent fault under the base test set
        // (four non-overlapping 64-test windows per 256-lane call).
        let n_tests = state.atpg.tests.len();
        let mut detections = vec![0usize; state.faults.len()];
        let mut base = 0usize;
        while base < n_tests {
            let offsets: Vec<usize> =
                (0..LANE_WORDS).map(|j| base + 64 * j).filter(|&o| o < n_tests).collect();
            let lanes = state.atpg.tests.lane_blocks(&offsets, view.pis.len());
            sim.set_patterns(&lanes);
            for &fi in &adjacent {
                let det = sim.detect_lanes(&state.faults[fi]);
                for (j, &offset) in offsets.iter().enumerate() {
                    let lanes_hit = det.word(j).count_ones() as usize;
                    let valid = (n_tests - offset).min(64);
                    detections[fi] += lanes_hit.min(valid);
                }
            }
            base += 64 * LANE_WORDS;
        }
        // Top up each adjacent fault to N detections with fresh tests.
        let mut podem = Podem::new(&state.nl, &view, ctx.atpg.backtrack_limit);
        let mut extra = 0usize;
        for &fi in &adjacent {
            let mut have = detections[fi];
            let mut seed = 1u64;
            while have < n && seed < n as u64 * 4 {
                let targets = targets_of(&state.faults[fi]);
                let mut got = false;
                for t in &targets {
                    if let PodemOutcome::Detected(_) =
                        podem.run_with_fill(t, Some(seed ^ fi as u64))
                    {
                        got = true;
                        break;
                    }
                }
                if got {
                    have += 1;
                    extra += 1;
                }
                seed += 1;
            }
        }
        println!(
            "{:<4} {:>12} {:>9.2}x",
            n,
            base_tests + extra,
            (base_tests + extra) as f64 / base_tests as f64
        );
        run.result(format!("{circuit}.n{n}.tests"), (base_tests + extra).to_string());
    }
    run.result(format!("{circuit}.base.tests"), base_tests.to_string());
    run.result(format!("{circuit}.adjacent"), adjacent.len().to_string());
    write_manifest(run);
    println!(
        "(compare: the resynthesis procedure keeps T roughly flat while removing the \
         undetectable faults themselves — Table II)"
    );
}
