//! E5 — the paper's Section IV ablation: instead of targeted resynthesis,
//! simply remove the seven cells with the largest internal-fault counts
//! from the library and re-synthesize the *whole* circuit. The paper finds
//! this blows up delay (130–137%) and power (109%) on sparc_ifu/sparc_fpu,
//! while the targeted procedure stays within `q`.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin ablation_library [circuit…]`

use rsyn_bench::{analyzed, context, write_manifest};
use rsyn_core::constraints::DesignConstraints;
use rsyn_core::flow::DesignState;
use rsyn_core::resynth::{resynthesize, ResynthOptions};
use rsyn_logic::map::MapOptions;
use rsyn_logic::Window;
use rsyn_netlist::{CellClass, CellId};
use rsyn_observe::manifest::Run;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuits: Vec<String> =
        if args.is_empty() { vec!["sparc_ifu".to_string(), "sparc_fpu".to_string()] } else { args };
    let ctx = context();
    let mut run = Run::start("ablation_library", ctx.seed);
    run.record_threads(0, ctx.atpg.effective_threads());
    let order = ctx.catalog.cells_by_internal_faults(&ctx.lib);
    let removed: Vec<String> = order[..7].iter().map(|&c| ctx.lib.cell(c).name.clone()).collect();
    println!("library ablation: removing the 7 most-faulty cells: {removed:?}");
    println!(
        "{:<12} {:<22} {:>8} {:>8} {:>8} {:>8}",
        "circuit", "variant", "U", "Cov%", "Delay%", "Power%"
    );

    for name in &circuits {
        let original = analyzed(name, &ctx);
        report(name, "original", &original, &original);

        // Naive: remap everything with the restricted library.
        let allowed: Vec<CellId> = order[7..]
            .iter()
            .copied()
            .filter(|&c| ctx.lib.cell(c).class == CellClass::Comb)
            .collect();
        let mut nl = original.nl.clone();
        let gates: Vec<_> = nl.gates().map(|(id, _)| id).collect();
        let window = Window::extract(&nl, &gates);
        window
            .resynthesize_with(&mut nl, &ctx.mapper, &allowed, &MapOptions::blend(0.35))
            .expect("restricted library is complete");
        let fp = original.pd.placement.floorplan();
        match DesignState::analyze(nl, &ctx, Some((fp, None))) {
            Ok(naive) => {
                report(name, "restricted library", &original, &naive);
                run.result(
                    format!("{name}.naive.undetectable"),
                    naive.undetectable_count().to_string(),
                );
            }
            Err(e) => {
                println!("{name:<12} {:<22} does not fit the floorplan: {e}", "restricted library")
            }
        }

        // Targeted: the paper's procedure at q = 5%.
        let constraints = DesignConstraints::from_original(&original, 5.0);
        let targeted = resynthesize(&original, &ctx, &constraints, &ResynthOptions::default());
        report(name, "targeted resynthesis", &original, &targeted.state);
        run.result(format!("{name}.orig.undetectable"), original.undetectable_count().to_string());
        run.result(
            format!("{name}.targeted.undetectable"),
            targeted.state.undetectable_count().to_string(),
        );
    }
    write_manifest(run);
}

fn report(circuit: &str, variant: &str, original: &DesignState, state: &DesignState) {
    println!(
        "{:<12} {:<22} {:>8} {:>7.2}% {:>7.2}% {:>7.2}%",
        circuit,
        variant,
        state.undetectable_count(),
        100.0 * state.coverage(),
        100.0 * state.delay_ps() / original.delay_ps(),
        100.0 * state.power_uw() / original.power_uw()
    );
}
