//! Structured-tracing bench bin: runs the resilient flow once with
//! tracing armed, exports the timeline, and prints a top-down wall-time
//! attribution report.
//!
//! ```text
//! trace_report [--threads N] [--out DIR] [circuit]
//! ```
//!
//! Artifacts written into `--out` (default `.`):
//!
//! * `BENCH_flow.json` — the full run manifest (deterministic counters +
//!   histograms, key results, volatile wall times). The stable section is
//!   byte-identical across `--threads` values; `scripts/verify.sh` gates
//!   on that and diffs the file against the checked-in `BENCH_flow.json`
//!   baseline with per-prefix regression bands (`check_manifest --band`).
//! * `trace.json` — Chrome Trace Event Format, loadable directly in
//!   `ui.perfetto.dev` or `chrome://tracing`: nested spans/zones per
//!   thread, per-fault and per-iteration zones carrying `args.id`.
//!
//! The stdout report shows the top-down attribution tree (nesting
//! reconstructed from timestamp containment per thread), the slowest
//! PODEM faults, the slowest resynthesis iterations, and every
//! deterministic histogram summarised with bucket-interpolated quantiles.
//!
//! Exit status: 0 on success, 1 when the flow fails or the trace came
//! back empty, 2 on usage errors.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use rsyn_bench::{context_with_threads, threads_flag};
use rsyn_circuits::build_benchmark_with;
use rsyn_core::run::{run, FlowOptions};
use rsyn_observe::manifest::Run;
use rsyn_observe::{hist, trace, Hist};

/// One node of the attribution tree: a name path from the thread root,
/// with total wall time and call count aggregated over every thread.
type Agg = HashMap<Vec<&'static str>, (u64, u64)>;

/// Rebuilds the nesting from timestamp containment (events are sorted by
/// (tid, start, longest-first), so a stack walk suffices) and aggregates
/// (total_ns, calls) per name path.
fn aggregate(trace: &trace::Trace) -> Agg {
    let mut agg: Agg = HashMap::new();
    for tid in trace.tids() {
        let mut stack: Vec<(u64, &'static str)> = Vec::new();
        for e in trace.events.iter().filter(|e| e.tid == tid) {
            while stack.last().is_some_and(|&(end, _)| e.ts_ns >= end) {
                stack.pop();
            }
            let mut path: Vec<&'static str> = stack.iter().map(|&(_, n)| n).collect();
            path.push(e.name);
            let entry = agg.entry(path).or_insert((0, 0));
            entry.0 += e.dur_ns;
            entry.1 += 1;
            stack.push((e.ts_ns.saturating_add(e.dur_ns), e.name));
        }
    }
    agg
}

fn print_tree(agg: &Agg, parent: &[&'static str], depth: usize) {
    let mut children: Vec<(&Vec<&'static str>, &(u64, u64))> = agg
        .iter()
        .filter(|(path, _)| path.len() == parent.len() + 1 && path.starts_with(parent))
        .collect();
    children.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    for (path, &(total_ns, calls)) in children {
        let name = path.last().expect("non-empty path");
        println!(
            "{:indent$}{name:<width$} {:>10.3} ms  {calls:>7} calls",
            "",
            total_ns as f64 / 1e6,
            indent = depth * 2,
            width = 36usize.saturating_sub(depth * 2),
        );
        print_tree(agg, path, depth + 1);
    }
}

/// Prints the top `n` events named `pick` (or with the given name prefix)
/// by duration, with their producer ids.
fn print_slowest(trace: &trace::Trace, title: &str, pick: &dyn Fn(&str) -> bool, n: usize) {
    let mut hits: Vec<&trace::TraceEvent> = trace.events.iter().filter(|e| pick(e.name)).collect();
    if hits.is_empty() {
        return;
    }
    hits.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.ts_ns.cmp(&b.ts_ns)));
    println!("\n{title}:");
    for e in hits.iter().take(n) {
        let id = e.id.map_or_else(String::new, |i| format!("id {i:>6}  "));
        println!("  {}{:<28} {:>10.3} ms  (tid {})", id, e.name, e.dur_ns as f64 / 1e6, e.tid);
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = threads_flag(&mut args);
    let mut out_dir = PathBuf::from(".");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if i + 1 >= args.len() {
            eprintln!("--out needs a directory");
            return ExitCode::from(2);
        }
        out_dir = PathBuf::from(&args[i + 1]);
        args.drain(i..=i + 1);
    }
    let circuit = args.first().map_or("sparc_tlu", String::as_str).to_string();

    let ctx = context_with_threads(threads);
    let options = FlowOptions::new(&circuit, "flow");
    let Some(nl) = build_benchmark_with(&circuit, &ctx.lib, &ctx.mapper) else {
        eprintln!("unknown benchmark {circuit}");
        return ExitCode::from(2);
    };

    let mut manifest = Run::start("flow", ctx.seed);
    manifest.record_threads(threads, ctx.atpg.effective_threads());
    trace::start();
    let report = run(nl, &ctx, &options);
    let collected = trace::stop();

    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_report FAILED: flow returned a fatal error: {e}");
            return ExitCode::FAILURE;
        }
    };

    manifest.result("accepted", report.accepted.to_string());
    manifest.result("aborted", report.aborted.to_string());
    manifest.result("recovered", report.recovered.len().to_string());
    manifest.result("undetectable", report.state.undetectable_count().to_string());
    manifest.result_f64("coverage", report.state.coverage());
    manifest.result_f64("delay_ps", report.state.delay_ps());
    manifest.result_f64("power_uw", report.state.power_uw());
    let manifest = manifest.finish();

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    let bench_path = out_dir.join("BENCH_flow.json");
    if let Err(e) = std::fs::write(&bench_path, manifest.to_json()) {
        eprintln!("cannot write {}: {e}", bench_path.display());
        return ExitCode::from(2);
    }
    eprintln!("bench manifest: {}", bench_path.display());
    match collected.write_chrome(out_dir.join("trace.json")) {
        Ok(path) => eprintln!("chrome trace:   {}", path.display()),
        Err(e) => {
            eprintln!("cannot write trace.json: {e}");
            return ExitCode::from(2);
        }
    }

    println!(
        "flow `{circuit}` (threads {threads}): accepted {}, U {}, coverage {:.4}",
        report.accepted,
        report.state.undetectable_count(),
        report.state.coverage(),
    );

    println!("\ntop-down wall-time attribution ({} events):", collected.events.len());
    let agg = aggregate(&collected);
    print_tree(&agg, &[], 0);

    print_slowest(&collected, "slowest faults", &|n| n == "atpg.fault", 10);
    print_slowest(
        &collected,
        "slowest resynthesis iterations",
        &|n| n.starts_with("resynth.iter."),
        10,
    );

    let names = hist::names(&manifest.counters);
    if !names.is_empty() {
        println!("\ndeterministic histograms:");
        for name in names {
            let Some(h) = Hist::from_counters(&manifest.counters, &name) else { continue };
            println!(
                "  {name:<36} n {:>7}  min {:>6}  p50 {:>6}  p90 {:>6}  max {:>8}  mean {:.1}",
                h.count,
                h.min,
                h.quantile(0.5),
                h.quantile(0.9),
                h.max,
                h.mean(),
            );
        }
    }

    if collected.events.is_empty() {
        eprintln!("trace_report FAILED: tracing produced no events");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
