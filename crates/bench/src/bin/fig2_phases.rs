//! E4 — regenerates the series behind the paper's **Fig. 2**: the two
//! phases of the resynthesis procedure, watched through the cluster-size
//! distribution after every accepted iteration. Phase 1 breaks up the
//! largest cluster (cluster "A", then "B", …); phase 2 cleans up the
//! remaining undetectable faults circuit-wide.
//!
//! Usage: `cargo run --release -p rsyn-bench --bin fig2_phases [circuit]`

use rsyn_bench::{analyzed, context, write_manifest};
use rsyn_core::constraints::DesignConstraints;
use rsyn_core::resynth::{resynthesize, Phase, ResynthOptions};
use rsyn_observe::manifest::Run;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "sparc_exu".to_string());
    let q: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(5.0);
    let ctx = context();
    let mut run = Run::start("fig2_phases", ctx.seed);
    run.record_threads(0, ctx.atpg.effective_threads());
    let original = analyzed(&circuit, &ctx);
    let constraints = DesignConstraints::from_original(&original, q);
    let options = ResynthOptions::default();

    println!("Fig. 2 series for {circuit}: cluster sizes per accepted iteration (q = {q}%)");
    let mut initial = original.clusters.size_distribution();
    initial.truncate(10);
    println!("{:<6} {:<8} {:>5} {:>6}  top clusters", "iter", "phase", "U", "Smax");
    println!(
        "{:<6} {:<8} {:>5} {:>6}  {:?}",
        0,
        "orig",
        original.undetectable_count(),
        original.s_max_size(),
        initial
    );
    let out = resynthesize(&original, &ctx, &constraints, &options);
    for (k, t) in out.trace.iter().enumerate() {
        let phase = match t.phase {
            Phase::One => "one",
            Phase::Two => "two",
        };
        println!(
            "{:<6} {:<8} {:>5} {:>6}  {:?}{}",
            k + 1,
            phase,
            t.undetectable,
            t.s_max,
            t.cluster_sizes,
            if t.used_backtracking { "  [backtracked]" } else { "" }
        );
    }
    println!(
        "final: U {} -> {}, Smax {} -> {}, coverage {:.2}% -> {:.2}%",
        original.undetectable_count(),
        out.state.undetectable_count(),
        original.s_max_size(),
        out.state.s_max_size(),
        100.0 * original.coverage(),
        100.0 * out.state.coverage()
    );
    run.result(format!("{circuit}.orig.undetectable"), original.undetectable_count().to_string());
    run.result(format!("{circuit}.final.undetectable"), out.state.undetectable_count().to_string());
    run.result(format!("{circuit}.final.smax"), out.state.s_max_size().to_string());
    run.result(format!("{circuit}.iterations"), out.trace.len().to_string());
    write_manifest(run);
}
