//! Storm gate for the fault-tolerant flow service (`rsyn-server`).
//!
//! Three phases, all asserted in-process (exit 1 on any gate failure):
//!
//! 1. **Storm** — a 4-worker server with a small bounded queue takes a
//!    burst of hundreds of concurrent submissions from parallel
//!    submitter threads over a handful of unique (circuit, q) jobs, so
//!    coalescing, load shedding, deadlines, and cancellation all trigger
//!    at once. Under `--inject`, a deterministic plan crashes workers,
//!    fails checkpoint writes, aborts PODEM searches, and sheds
//!    submissions at fixed ordinals; shed clients retry under the
//!    deterministic jittered [`BackoffPolicy`]. Gates: **zero lost
//!    jobs** (every submission reaches a terminal outcome; the job
//!    conservation law balances), no failed jobs, every armed server
//!    fate actually fired.
//! 2. **Preemption** — a 2-worker server is saturated with low-priority
//!    `sparc_tlu` jobs, then high-priority `sparc_ffu` jobs arrive. The
//!    victims stop at a checkpoint boundary, the high jobs run, and the
//!    victims resume from their checkpoints. Gates: preemptions and
//!    resumes observed, everything completes.
//! 3. **Equivalence** — every unique (circuit, q) completed by phases
//!    1–2 is re-run directly through `rsyn_core::run`; the server's
//!    result digest (fault verdicts + all headline metrics, floats by
//!    bit pattern) must be byte-identical — including for the
//!    preempted-then-resumed jobs.
//!
//! Writes a `server_storm` manifest; the verify stage then checks the
//! `server.{shed,retry,resume}` counters are present and nonzero.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rsyn_bench::{context_with_threads, threads_flag, write_manifest};
use rsyn_circuits::build_benchmark_with;
use rsyn_core::{run, FlowContext, FlowOptions};
use rsyn_netlist::Netlist;
use rsyn_observe::manifest::Run;
use rsyn_resilience::inject::{self, InjectionPlan};
use rsyn_resilience::BackoffPolicy;
use rsyn_server::{
    report_digest, JobHandle, JobOutcome, JobSpec, Priority, Server, ServerConfig, SubmitVerdict,
};

/// The unique storm jobs: mixed sizes (sparc_ffu is fast, sparc_tlu is
/// several times longer), several relaxations each.
const STORM_JOBS: [(&str, f64); 6] = [
    ("sparc_ffu", 3.0),
    ("sparc_ffu", 4.0),
    ("sparc_ffu", 5.0),
    ("sparc_ffu", 6.0),
    ("sparc_tlu", 5.0),
    ("sparc_tlu", 6.0),
];
const SUBMITTERS: usize = 8;
const ROUNDS: usize = 5;

/// The server-fate injection plan. Pickup ordinals 0 and 3 crash their
/// worker, checkpoint-write ordinals 1 and 5 fail, four submission
/// ordinals are shed (clients retry), and the first ATPG run's first
/// eight faults get PODEM aborts (rescued by escalation, so results stay
/// equivalent to a clean run).
fn storm_plan() -> InjectionPlan {
    let mut plan = InjectionPlan::new()
        .crash_worker(0)
        .crash_worker(3)
        .fail_checkpoint_write(1)
        .fail_checkpoint_write(5)
        .reject_submit(3)
        .reject_submit(10)
        .reject_submit(25)
        .reject_submit(50);
    for fault in 0..8 {
        plan = plan.abort_podem(0, fault);
    }
    plan
}

fn seed_netlist(ctx: &FlowContext, circuit: &str) -> Netlist {
    build_benchmark_with(circuit, &ctx.lib, &ctx.mapper)
        .unwrap_or_else(|| panic!("unknown benchmark {circuit}"))
}

fn job_label(circuit: &str, q: f64) -> String {
    format!("{circuit}-q{q}")
}

/// Submits with client-side retry of shed verdicts under the
/// deterministic jittered backoff policy. Returns the handle and how
/// many sheds were absorbed.
fn submit_with_retry(server: &Server, make: impl Fn() -> JobSpec, key: u64) -> (JobHandle, u64) {
    let policy = BackoffPolicy { base_ms: 5, factor: 2, cap_ms: 80, jitter_percent: 25, seed: 7 };
    let mut attempt = 0u32;
    loop {
        match server.submit(make()) {
            SubmitVerdict::Shed => {
                std::thread::sleep(Duration::from_millis(policy.delay_ms(key, attempt)));
                attempt += 1;
            }
            verdict => {
                let handle = verdict.handle().expect("not shed").clone();
                return (handle, u64::from(attempt));
            }
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = threads_flag(&mut args);
    let injected = args.iter().position(|a| a == "--inject").map(|i| args.remove(i)).is_some();
    let work = args
        .iter()
        .position(|a| a == "--work-dir")
        .map(|i| {
            let dir = PathBuf::from(&args[i + 1]);
            args.drain(i..=i + 1);
            dir
        })
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("rsyn-server-storm-{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&work);

    let ctx = context_with_threads(threads);
    let mut manifest = Run::start("server_storm", ctx.seed);
    manifest.record_threads(threads, ctx.atpg.effective_threads());
    let netlists: BTreeMap<&str, Netlist> =
        ["sparc_ffu", "sparc_tlu"].into_iter().map(|c| (c, seed_netlist(&ctx, c))).collect();
    let mut failures: Vec<String> = Vec::new();
    // First-seen result digest per unique job; every later completion of
    // the same (circuit, q) — server or direct — must match it.
    let mut digests: BTreeMap<String, String> = BTreeMap::new();
    let check_digest = |digests: &mut BTreeMap<String, String>,
                        failures: &mut Vec<String>,
                        label: &str,
                        digest: String| {
        match digests.get(label) {
            None => {
                digests.insert(label.to_string(), digest);
            }
            Some(first) if *first != digest => {
                failures.push(format!("result divergence for {label}"));
            }
            Some(_) => {}
        }
    };

    // ---- Phase 1: the storm -------------------------------------------
    eprintln!(
        "phase 1: storm of {} submissions over {} unique jobs{}",
        SUBMITTERS * ROUNDS * STORM_JOBS.len() + 3,
        STORM_JOBS.len(),
        if injected { " (injection armed)" } else { "" },
    );
    let armed = injected.then(|| inject::arm(storm_plan()));
    let mut cfg = ServerConfig::new(work.join("storm"));
    cfg.workers = 4;
    cfg.queue_capacity = 16;
    let server = Server::start(cfg, ctx.lib.clone());
    let storm_started = Instant::now();

    // Specials: two hopeless deadlines and one cancellation, on unique q
    // values so they do not coalesce with the real work.
    let nl = &netlists["sparc_ffu"];
    let hopeless: Vec<JobHandle> = [99.0, 98.0]
        .into_iter()
        .map(|q| {
            let spec =
                JobSpec::new(nl.clone(), "sparc_ffu").with_q(q).with_deadline(Duration::ZERO);
            server.submit(spec).handle().expect("queued").clone()
        })
        .collect();
    let doomed = {
        let spec = JobSpec::new(nl.clone(), "sparc_ffu").with_q(97.0);
        let handle = server.submit(spec).handle().expect("queued").clone();
        handle.cancel();
        handle
    };

    let client_sheds = AtomicU64::new(0);
    let submitted: Mutex<Vec<(usize, JobHandle)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for submitter in 0..SUBMITTERS {
            let server = &server;
            let netlists = &netlists;
            let client_sheds = &client_sheds;
            let submitted = &submitted;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (job, (circuit, q)) in STORM_JOBS.into_iter().enumerate() {
                        let make = || JobSpec::new(netlists[circuit].clone(), circuit).with_q(q);
                        let retry_key = (submitter * ROUNDS + round) as u64;
                        let (handle, sheds) = submit_with_retry(server, make, retry_key);
                        client_sheds.fetch_add(sheds, Ordering::Relaxed);
                        submitted.lock().expect("submitters do not panic").push((job, handle));
                    }
                }
            });
        }
    });

    let submissions = submitted.into_inner().expect("scope joined");
    for (job, handle) in &submissions {
        let (circuit, q) = STORM_JOBS[*job];
        match handle.wait() {
            JobOutcome::Completed(report) => {
                check_digest(
                    &mut digests,
                    &mut failures,
                    &job_label(circuit, q),
                    report_digest(&report),
                );
            }
            other => failures.push(format!(
                "storm job {} lost: terminal outcome {}",
                job_label(circuit, q),
                other.label()
            )),
        }
    }
    for handle in &hopeless {
        if !matches!(handle.wait(), JobOutcome::DeadlineExceeded) {
            failures.push("zero-deadline job did not report DeadlineExceeded".into());
        }
    }
    if !matches!(doomed.wait(), JobOutcome::Cancelled) {
        failures.push("cancelled job did not report Cancelled".into());
    }

    let storm_stats = server.shutdown();
    let storm_secs = storm_started.elapsed().as_secs_f64();
    eprintln!(
        "phase 1 done in {storm_secs:.1}s: {} submissions -> {} completed jobs \
         ({} coalesced, {} shed, {} retries, {} contained panics)",
        storm_stats.submitted,
        storm_stats.completed,
        storm_stats.coalesced,
        storm_stats.shed,
        storm_stats.retries,
        storm_stats.panics,
    );

    // Zero lost jobs, as a conservation law: every accepted submission
    // became exactly one job, and every job reached exactly one terminal
    // outcome.
    let jobs_created = storm_stats.submitted - storm_stats.coalesced - storm_stats.shed;
    let jobs_finished =
        storm_stats.completed + storm_stats.failed + storm_stats.cancelled + storm_stats.deadline;
    if jobs_created != jobs_finished {
        failures.push(format!(
            "job conservation violated: {jobs_created} jobs created, {jobs_finished} finished"
        ));
    }
    if storm_stats.failed != 0 {
        failures.push(format!("{} jobs failed outright", storm_stats.failed));
    }
    if storm_stats.shed != client_sheds.load(Ordering::Relaxed) {
        failures.push(format!(
            "shed accounting mismatch: server {} vs clients {}",
            storm_stats.shed,
            client_sheds.load(Ordering::Relaxed)
        ));
    }
    if storm_stats.coalesced == 0 {
        failures.push("the storm never coalesced identical submissions".into());
    }
    if let Some(armed) = &armed {
        let fired = armed.fired_counts();
        for (name, expected) in [
            ("inject.fired.worker_crash", 2),
            ("inject.fired.checkpoint_write", 2),
            ("inject.fired.queue_full", 4),
        ] {
            let n = fired.get(name).copied().unwrap_or(0);
            if n != expected {
                failures.push(format!("{name} fired {n} times, expected {expected}"));
            }
        }
        if fired.get("inject.fired.podem_abort").copied().unwrap_or(0) == 0 {
            failures.push("no PODEM abort fired".into());
        }
        if storm_stats.retries == 0 {
            failures.push("worker crashes did not drive backoff retries".into());
        }
    }
    drop(armed);

    // ---- Phase 2: checkpoint-backed preemption ------------------------
    eprintln!("phase 2: preemption of low-priority jobs under high-priority arrivals");
    let mut cfg = ServerConfig::new(work.join("preempt"));
    cfg.workers = 2;
    let server = Server::start(cfg, ctx.lib.clone());
    let low: Vec<(String, JobHandle)> = [5.0, 6.0]
        .into_iter()
        .map(|q| {
            let spec = JobSpec::new(netlists["sparc_tlu"].clone(), "sparc_tlu")
                .with_q(q)
                .with_priority(Priority::Low);
            let handle = server.submit(spec).handle().expect("queued").clone();
            (job_label("sparc_tlu", q), handle)
        })
        .collect();
    // Wait until both low jobs have written their first checkpoint, so a
    // preemption now is checkpoint-backed (the victim resumes from disk
    // instead of restarting from scratch).
    let checkpoint_wait = Instant::now();
    while !low.iter().all(|(_, h)| server.has_checkpoint(h))
        && checkpoint_wait.elapsed() < Duration::from_secs(120)
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    let high: Vec<(String, JobHandle)> = [3.0, 4.0]
        .into_iter()
        .map(|q| {
            let spec = JobSpec::new(netlists["sparc_ffu"].clone(), "sparc_ffu")
                .with_q(q)
                .with_priority(Priority::High);
            let handle = server.submit(spec).handle().expect("queued").clone();
            (job_label("sparc_ffu", q), handle)
        })
        .collect();
    for (label, handle) in low.iter().chain(high.iter()) {
        match handle.wait() {
            JobOutcome::Completed(report) => {
                check_digest(&mut digests, &mut failures, label, report_digest(&report));
            }
            other => {
                failures.push(format!("preemption-phase job {label} ended {}", other.label()));
            }
        }
    }
    let preempt_stats = server.shutdown();
    eprintln!(
        "phase 2 done: {} preemptions, {} resumes, {} completed",
        preempt_stats.preempts, preempt_stats.resumes, preempt_stats.completed,
    );
    if preempt_stats.preempts == 0 {
        failures.push("high-priority arrivals never preempted a low job".into());
    }
    if preempt_stats.resumes == 0 {
        failures.push("no preempted job resumed from its checkpoint".into());
    }
    if preempt_stats.completed != 4 {
        failures.push(format!("preemption phase completed {}/4 jobs", preempt_stats.completed));
    }

    // ---- Phase 3: equivalence with direct runs ------------------------
    eprintln!("phase 3: direct rsyn_core::run equivalence over {} unique jobs", digests.len());
    for (circuit, q) in STORM_JOBS {
        let label = job_label(circuit, q);
        if !digests.contains_key(&label) {
            failures.push(format!("no completed server execution for {label}"));
            continue;
        }
        let mut options = FlowOptions::new(circuit, &format!("direct-{label}"));
        options.q_percent = q;
        match run(netlists[circuit].clone(), &ctx, &options) {
            Ok(report) => {
                let digest = report_digest(&report);
                if digests[&label] != digest {
                    failures.push(format!("server result for {label} differs from direct run"));
                }
            }
            Err(e) => failures.push(format!("direct run of {label} failed: {e}")),
        }
    }

    manifest.result("unique_jobs", digests.len().to_string());
    manifest.result("storm_submitted", storm_stats.submitted.to_string());
    manifest.result("storm_coalesced", storm_stats.coalesced.to_string());
    manifest.result("storm_shed", storm_stats.shed.to_string());
    manifest.result("storm_completed", storm_stats.completed.to_string());
    manifest.result("preempts", preempt_stats.preempts.to_string());
    manifest.result("resumes", preempt_stats.resumes.to_string());
    manifest
        .result_f64("storm_jobs_per_sec", f64::max(storm_stats.completed as f64 / storm_secs, 0.0));
    write_manifest(manifest);

    let _ = std::fs::remove_dir_all(&work);
    if failures.is_empty() {
        println!(
            "server storm ok: {} submissions, {} unique jobs, zero lost, results \
             equivalent to direct runs ({:.2} jobs/s)",
            storm_stats.submitted,
            digests.len(),
            storm_stats.completed as f64 / storm_secs,
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("storm FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
