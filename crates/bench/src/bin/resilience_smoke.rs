//! Failure-injection and checkpoint/resume smoke gate for the resilient
//! flow (`rsyn_core::run`).
//!
//! Modes:
//!
//! * `resilience_smoke [--threads N] [circuit]` — clean run with
//!   per-iteration checkpoints (when `--checkpoint-dir` is set).
//! * `resilience_smoke --inject …` — same run under a deterministic
//!   injection plan: one forced `PDesign()` rejection at the first
//!   candidate evaluation, a stretch of inflated-delay evaluations that
//!   drives the Section III-C backtracking path, a forced worker-shard
//!   failure, and a handful of forced PODEM aborts. The run must still
//!   return `Ok` with a best-so-far design, and the manifest must be
//!   byte-identical across `--threads 1` and `--threads 4`.
//! * `resilience_smoke --resume <checkpoint.json> …` — resumes a clean
//!   checkpointed run; the continuation must re-write byte-identical
//!   checkpoints and land on the byte-identical stable manifest.
//!
//! The manifest is always named `resilience` so runs in different
//! `RSYN_MANIFEST_DIR`s can be compared with `check_manifest
//! --determinism`. Exit status: 0 on pass, 1 on a failed smoke assertion.

use std::path::PathBuf;
use std::process::ExitCode;

use rsyn_bench::{context_with_threads, threads_flag, write_manifest};
use rsyn_circuits::build_benchmark_with;
use rsyn_core::flow::FlowContext;
use rsyn_core::run::{run, run_resumed, FlowOptions, FlowReport};
use rsyn_netlist::Netlist;
use rsyn_observe::manifest::Run;
use rsyn_resilience::{inject, Checkpoint};

/// The injection plan of the smoke gate. Ordinal 0 is the seed analysis;
/// ordinal 1 is the first candidate's `PDesign()` call (rejected outright).
/// Ordinal 2 is the next candidate — inflating its delay makes it
/// accepting-but-constraint-violating, and inflating ordinal 3 defeats the
/// timing-driven retry, which forces the Section III-C backtracking
/// procedure (and its `resynth.backtrack_shrinks` counter) to run.
/// Backtracking's own evaluations (ordinal 4 onward) stay clean so the
/// flow can still converge to an accepted design.
fn smoke_plan() -> inject::InjectionPlan {
    let mut plan = inject::InjectionPlan::new()
        .reject_pdesign(1)
        .inflation_percent(300)
        .inflate_pdesign(2)
        .inflate_pdesign(3)
        .fail_shard(0, 0);
    for fault in 0..8 {
        plan = plan.abort_podem(0, fault);
    }
    plan
}

fn seed_netlist(ctx: &FlowContext, circuit: &str) -> Netlist {
    build_benchmark_with(circuit, &ctx.lib, &ctx.mapper)
        .unwrap_or_else(|| panic!("unknown benchmark {circuit}"))
}

fn record(manifest: &mut Run, report: &FlowReport) {
    // Only final-state facts: a resumed run must produce the identical
    // result set (so no `replayed` / `checkpoints_written` here).
    manifest.result("accepted", report.accepted.to_string());
    manifest.result("aborted", report.aborted.to_string());
    manifest.result("recovered", report.recovered.len().to_string());
    manifest.result("undetectable", report.state.undetectable_count().to_string());
    manifest.result_f64("coverage", report.state.coverage());
    manifest.result_f64("delay_ps", report.state.delay_ps());
    manifest.result_f64("power_uw", report.state.power_uw());
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = threads_flag(&mut args);
    let mut injected = false;
    let mut resume_from: Option<PathBuf> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    if let Some(i) = args.iter().position(|a| a == "--inject") {
        injected = true;
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--resume") {
        if i + 1 >= args.len() {
            eprintln!("--resume needs a checkpoint path");
            return ExitCode::from(2);
        }
        resume_from = Some(PathBuf::from(&args[i + 1]));
        args.drain(i..=i + 1);
    }
    if let Some(i) = args.iter().position(|a| a == "--checkpoint-dir") {
        if i + 1 >= args.len() {
            eprintln!("--checkpoint-dir needs a path");
            return ExitCode::from(2);
        }
        checkpoint_dir = Some(PathBuf::from(&args[i + 1]));
        args.drain(i..=i + 1);
    }
    let circuit = args.first().map_or("sparc_tlu", String::as_str).to_string();
    if injected && resume_from.is_some() {
        eprintln!(
            "--inject and --resume are mutually exclusive (a resumed run must \
                   replay the uninjected continuation)"
        );
        return ExitCode::from(2);
    }

    let ctx = context_with_threads(threads);
    let mut options = FlowOptions::new(&circuit, "resilience");
    options.checkpoint_dir = checkpoint_dir;
    let mut manifest = Run::start("resilience", ctx.seed);
    manifest.record_threads(threads, ctx.atpg.effective_threads());

    let report = if let Some(path) = &resume_from {
        let checkpoint = match Checkpoint::read(path) {
            Ok(cp) => cp,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        eprintln!(
            "resuming {circuit} from {} ({} replayed remaps)",
            path.display(),
            checkpoint.remaps.len()
        );
        run_resumed(seed_netlist(&ctx, &circuit), &ctx, &options, &checkpoint)
    } else {
        let armed = injected.then(|| inject::arm(smoke_plan()));
        if injected {
            eprintln!("running {circuit} under the smoke injection plan");
        }
        let report = run(seed_netlist(&ctx, &circuit), &ctx, &options);
        drop(armed);
        report
    };

    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("smoke FAILED: flow returned a fatal error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "flow ok: accepted {} ({} replayed), U {}, coverage {:.4}, aborted {}, \
         recovered {} failures, {} checkpoints",
        report.accepted,
        report.replayed,
        report.state.undetectable_count(),
        report.state.coverage(),
        report.aborted,
        report.recovered.len(),
        report.checkpoints_written,
    );

    let counters = rsyn_observe::counters();
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    let mut failures = Vec::new();
    if report.accepted == 0 {
        failures.push("no iteration was accepted".to_string());
    }
    if injected {
        for (what, name) in [
            ("the PDesign rejection", "inject.fired.pdesign_reject"),
            ("the delay inflation", "inject.fired.pdesign_inflate"),
            ("the shard failure", "inject.fired.shard"),
        ] {
            if counter(name) == 0 {
                failures.push(format!("{what} never fired ({name} == 0)"));
            }
        }
        if counter("resynth.backtrack_shrinks") == 0 {
            failures.push(
                "inflated candidates did not drive backtracking \
                           (resynth.backtrack_shrinks == 0)"
                    .to_string(),
            );
        }
        if counter("atpg.shard_retries") == 0 {
            failures.push("the failed shard was not retried (atpg.shard_retries == 0)".into());
        }
        if counter("atpg.shard_failed") != 0 {
            failures.push("a shard degraded instead of recovering on retry".into());
        }
    }
    if resume_from.is_some() && report.replayed == 0 {
        failures.push("resume replayed nothing".to_string());
    }

    record(&mut manifest, &report);
    write_manifest(manifest);

    if failures.is_empty() {
        println!("resilience smoke ok ({circuit}, threads {threads})");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("smoke FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
