//! Benchmark harness for the `rsyn` reproduction: shared helpers for the
//! table/figure regenerators in `src/bin` and the criterion benches in
//! `benches/`.
//!
//! Every binary regenerates one experiment from DESIGN.md's experiment
//! index (E1–E9); run them with `cargo run --release -p rsyn-bench --bin
//! <name>`. The table binaries accept `--threads N` to set the ATPG
//! worker pool (0 = all cores); any value produces identical tables.

use std::path::PathBuf;
use std::sync::Arc;

use rsyn_circuits::build_benchmark_with;
use rsyn_core::flow::{DesignState, FlowContext};
use rsyn_netlist::Library;
use rsyn_observe::manifest::Run;

/// Builds the shared flow context over the built-in library.
pub fn context() -> FlowContext {
    FlowContext::new(Library::osu018())
}

/// Like [`context`], with an explicit ATPG worker-thread count
/// (`0` = available parallelism). Tables are identical for any value.
pub fn context_with_threads(threads: usize) -> FlowContext {
    FlowContext::new(Library::osu018()).with_threads(threads)
}

/// Strips a `--threads N` flag from `args` and returns `N`
/// (`0` — use all available cores — when absent or malformed).
pub fn threads_flag(args: &mut Vec<String>) -> usize {
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if i + 1 < args.len() {
            let n = args[i + 1].parse().unwrap_or(0);
            args.drain(i..=i + 1);
            return n;
        }
        args.remove(i);
    }
    0
}

/// Builds and fully analyses one benchmark.
///
/// # Panics
///
/// Panics on unknown benchmark names or analysis failure (harness usage).
pub fn analyzed(name: &str, ctx: &FlowContext) -> DesignState {
    let nl = build_benchmark_with(name, &ctx.lib, &ctx.mapper)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    DesignState::analyze(nl, ctx, None).expect("analysis succeeds")
}

/// The library as an `Arc` (for binaries that need it directly).
pub fn library() -> Arc<Library> {
    Library::osu018()
}

/// Directory run manifests are written to: `$RSYN_MANIFEST_DIR`, or
/// `results/` when unset.
pub fn manifest_dir() -> PathBuf {
    std::env::var_os("RSYN_MANIFEST_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Finalizes an observability [`Run`] and writes its manifest to
/// [`manifest_dir`], reporting the path on stderr. Panics on I/O failure
/// (harness usage: a missing manifest must fail loudly, not silently).
pub fn write_manifest(run: Run) {
    let manifest = run.finish();
    let dir = manifest_dir();
    let path = manifest
        .write_to_dir(&dir)
        .unwrap_or_else(|e| panic!("writing manifest to {}: {e}", dir.display()));
    eprintln!("manifest: {}", path.display());
}

/// Parses `--max-q N` style flags plus positional circuit names from CLI
/// arguments; returns `(max_q, circuits)`. Defaults: `max_q = 5`, all
/// twelve benchmark circuits.
pub fn parse_args(args: &[String]) -> (u32, Vec<String>) {
    let mut max_q = 5u32;
    let mut circuits = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-q" && i + 1 < args.len() {
            max_q = args[i + 1].parse().unwrap_or(5);
            i += 2;
        } else {
            circuits.push(args[i].clone());
            i += 1;
        }
    }
    if circuits.is_empty() {
        circuits = rsyn_circuits::BENCHMARKS.iter().map(|s| s.to_string()).collect();
    }
    (max_q, circuits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_defaults() {
        let (q, c) = parse_args(&[]);
        assert_eq!(q, 5);
        assert_eq!(c.len(), 12);
    }

    #[test]
    fn parse_args_custom() {
        let args = vec!["--max-q".to_string(), "2".to_string(), "tv80".to_string()];
        let (q, c) = parse_args(&args);
        assert_eq!(q, 2);
        assert_eq!(c, vec!["tv80"]);
    }

    #[test]
    fn threads_flag_strips_and_defaults() {
        let mut args = vec!["--threads".to_string(), "8".to_string(), "tv80".to_string()];
        assert_eq!(threads_flag(&mut args), 8);
        assert_eq!(args, vec!["tv80"]);
        let mut none = vec!["tv80".to_string()];
        assert_eq!(threads_flag(&mut none), 0);
        assert_eq!(none, vec!["tv80"]);
    }
}
