//! Criterion bench: good-machine simulation kernel throughput at the three
//! lane widths — scalar (one pattern per call), 64-lane (`u64` word), and
//! 256-lane (`LaneBlock`). This is the E12 kernel-speedup experiment; see
//! EXPERIMENTS.md for the reproduce commands and the expected shape of the
//! results (256-lane ≈ 4x the 64-lane pattern throughput, both far above
//! scalar).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsyn_bench::{analyzed, context};
use rsyn_netlist::sim::ParallelSim;
use rsyn_netlist::LaneBlock;

fn bench_sim_kernel(c: &mut Criterion) {
    let ctx = context();
    let state = analyzed("sparc_tlu", &ctx);
    let view = state.nl.comb_view().unwrap();
    let npis = view.pis.len();

    // Deterministic input data, identical across widths.
    let words: Vec<u64> =
        (0..npis).map(|i| (0x9E37_79B9_7F4A_7C15u64 << (i % 13)).rotate_left(i as u32)).collect();

    let mut group = c.benchmark_group("sim_kernel");

    // Scalar: one pattern per simulate() call (lane 0 of a u64 word) — the
    // per-pattern cost a naive simulator pays.
    group.throughput(Throughput::Elements(64));
    group.bench_with_input(BenchmarkId::from_parameter("scalar"), &state, |b, state| {
        let mut sim: ParallelSim = ParallelSim::new(&state.nl, &view);
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..64u64 {
                let pi_vals: Vec<u64> = words.iter().map(|w| (w >> (k % 64)) & 1).collect();
                sim.simulate(&pi_vals);
                acc ^= sim.output_values().iter().fold(0, |a, v| a ^ v);
            }
            acc
        });
    });

    // 64-lane: one u64 word per call.
    group.throughput(Throughput::Elements(64));
    group.bench_with_input(BenchmarkId::from_parameter("64lane"), &state, |b, state| {
        let mut sim: ParallelSim = ParallelSim::new(&state.nl, &view);
        b.iter(|| {
            sim.simulate(&words);
            sim.output_values().iter().fold(0u64, |a, v| a ^ v)
        });
    });

    // 256-lane: one LaneBlock per call (four words of patterns).
    group.throughput(Throughput::Elements(256));
    group.bench_with_input(BenchmarkId::from_parameter("256lane"), &state, |b, state| {
        let mut sim: ParallelSim<LaneBlock> = ParallelSim::new(&state.nl, &view);
        let blocks: Vec<LaneBlock> = words
            .iter()
            .map(|&w| LaneBlock::from_words([w, w.rotate_left(17), w.rotate_left(31), !w]))
            .collect();
        b.iter(|| {
            sim.simulate(&blocks);
            sim.output_values().iter().fold(0u64, |a, v| a ^ v.word(0) ^ v.word(3))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sim_kernel);
criterion_main!(benches);
