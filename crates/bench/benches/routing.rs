//! Criterion bench: placement + routing + DFM scan (`PDesign()` plus the
//! sign-off scan), gated by the internal pre-check in the real flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsyn_bench::{analyzed, context};
use rsyn_dfm::scan_layout;
use rsyn_pdesign::flow::physical_design;

fn bench_pdesign(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("physical_design");
    group.sample_size(10);
    for name in ["sparc_tlu", "sparc_exu", "wb_conmax"] {
        let state = analyzed(name, &ctx);
        group.bench_with_input(BenchmarkId::from_parameter(name), &state, |b, state| {
            b.iter(|| physical_design(&state.nl, 0xDA7E).expect("fits"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dfm_scan");
    group.sample_size(10);
    for name in ["sparc_exu", "aes_core"] {
        let state = analyzed(name, &ctx);
        group.bench_with_input(BenchmarkId::from_parameter(name), &state, |b, state| {
            b.iter(|| scan_layout(&state.pd.layout, &ctx.guidelines).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pdesign);
criterion_main!(benches);
