//! Criterion bench: technology mapping (`Synthesize()`), full-library and
//! restricted — the inner loop of every resynthesis candidate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsyn_bench::{analyzed, context};
use rsyn_logic::map::MapOptions;
use rsyn_logic::Window;
use rsyn_netlist::CellClass;

fn bench_mapping(c: &mut Criterion) {
    let ctx = context();
    let state = analyzed("sparc_exu", &ctx);
    let gates: Vec<_> = state.nl.gates().map(|(id, _)| id).collect();
    let full: Vec<_> = ctx.lib.comb_cells();
    let order = ctx.catalog.cells_by_internal_faults(&ctx.lib);
    let restricted: Vec<_> =
        order[7..].iter().copied().filter(|&c| ctx.lib.cell(c).class == CellClass::Comb).collect();

    let mut group = c.benchmark_group("technology_mapping");
    group.sample_size(20);
    for (label, allowed) in [("full_library", &full), ("without_7_largest", &restricted)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), allowed, |b, allowed| {
            b.iter(|| {
                let mut nl = state.nl.clone();
                let window = Window::extract(&nl, &gates);
                window
                    .resynthesize_with(&mut nl, &ctx.mapper, allowed, &MapOptions::area())
                    .expect("maps")
                    .len()
            });
        });
    }
    group.finish();

    // Match-table construction (one-time cost the Mapper amortises).
    c.bench_function("match_table_build", |b| {
        b.iter(|| rsyn_logic::MatchTable::build(&ctx.lib));
    });
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
