//! Criterion bench: structural clustering of the undetectable fault set
//! (Section II's partition into `S_0, S_1, …`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsyn_bench::{analyzed, context};
use rsyn_cluster::cluster_faults;

fn bench_clustering(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("cluster_undetectable");
    for name in ["sparc_exu", "aes_core", "des_perf"] {
        let state = analyzed(name, &ctx);
        let subset = state.atpg.undetectable_indices();
        group.bench_with_input(BenchmarkId::from_parameter(name), &state, |b, state| {
            b.iter(|| cluster_faults(&state.nl, &state.faults, &subset).s_max_size());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
