//! Criterion bench: one full resynthesis run (both phases, q = 5%) on the
//! smallest benchmark — the paper's end-to-end procedure.

use criterion::{criterion_group, criterion_main, Criterion};
use rsyn_bench::{analyzed, context};
use rsyn_core::constraints::DesignConstraints;
use rsyn_core::resynth::{resynthesize, ResynthOptions};

fn bench_resynth(c: &mut Criterion) {
    let ctx = context();
    let original = analyzed("sparc_tlu", &ctx);
    let constraints = DesignConstraints::from_original(&original, 5.0);
    let mut group = c.benchmark_group("resynthesis_procedure");
    group.sample_size(10);
    group.bench_function("sparc_tlu_q5", |b| {
        b.iter(|| {
            let out = resynthesize(&original, &ctx, &constraints, &ResynthOptions::default());
            out.state.undetectable_count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_resynth);
criterion_main!(benches);
