//! Criterion bench: full ATPG (random phase + PODEM + compaction) on the
//! benchmark circuits' complete DFM fault sets — the kernel behind every
//! Table I / Table II cell — plus a worker-thread sweep demonstrating the
//! parallel engine's speedup on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsyn_atpg::engine::{run_atpg, AtpgOptions};
use rsyn_bench::{analyzed, context};

fn bench_atpg(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("atpg_full");
    group.sample_size(10);
    for name in ["sparc_tlu", "sparc_exu"] {
        let state = analyzed(name, &ctx);
        let view = state.nl.comb_view().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &state, |b, state| {
            b.iter(|| run_atpg(&state.nl, &view, &state.faults, &AtpgOptions::default()));
        });
    }
    group.finish();
}

fn bench_atpg_threads(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("atpg_threads");
    group.sample_size(10);
    for name in ["sparc_tlu", "sparc_exu"] {
        let state = analyzed(name, &ctx);
        let view = state.nl.comb_view().unwrap();
        for threads in [1usize, 2, 4, 8] {
            let options = AtpgOptions::default().with_threads(threads);
            group.bench_with_input(BenchmarkId::new(name, threads), &state, |b, state| {
                b.iter(|| run_atpg(&state.nl, &view, &state.faults, &options));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_atpg, bench_atpg_threads);
criterion_main!(benches);
