//! Criterion bench: 64-lane parallel fault simulation throughput (the
//! random-phase workhorse that drops most faults before PODEM runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsyn_atpg::sim::FaultSim;
use rsyn_bench::{analyzed, context};

fn bench_fault_sim(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("fault_sim_64lane");
    for name in ["sparc_tlu", "sparc_exu", "aes_core"] {
        let state = analyzed(name, &ctx);
        let view = state.nl.comb_view().unwrap();
        group.throughput(Throughput::Elements(state.faults.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &state, |b, state| {
            let mut sim = FaultSim::new(&state.nl, &view);
            let lanes: Vec<u64> = (0..view.pis.len()).map(|i| 0x9E37_79B9u64 << (i % 8)).collect();
            sim.set_patterns(&lanes);
            b.iter(|| {
                let mut detected = 0u64;
                for fault in &state.faults {
                    detected += u64::from(sim.detect_lanes(fault) != 0);
                }
                detected
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim);
criterion_main!(benches);
