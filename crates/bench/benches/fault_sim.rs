//! Criterion bench: 256-lane parallel fault simulation throughput (the
//! random-phase workhorse that drops most faults before PODEM runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsyn_atpg::sim::FaultSim;
use rsyn_bench::{analyzed, context};
use rsyn_netlist::{LaneBlock, LANE_WORDS};

fn bench_fault_sim(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("fault_sim_256lane");
    for name in ["sparc_tlu", "sparc_exu", "aes_core"] {
        let state = analyzed(name, &ctx);
        let view = state.nl.comb_view().unwrap();
        group.throughput(Throughput::Elements(state.faults.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &state, |b, state| {
            let mut sim = FaultSim::new(&state.nl, &view);
            let lanes: Vec<LaneBlock> = (0..view.pis.len())
                .map(|i| {
                    let mut b = LaneBlock::ZERO;
                    for j in 0..LANE_WORDS {
                        b.set_word(j, (0x9E37_79B9u64 << (i % 8)).rotate_left(j as u32 * 13));
                    }
                    b
                })
                .collect();
            sim.set_patterns(&lanes);
            b.iter(|| {
                let mut detected = 0u64;
                for fault in &state.faults {
                    detected += u64::from(sim.detect_lanes(fault).any());
                }
                detected
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim);
criterion_main!(benches);
