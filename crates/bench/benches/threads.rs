//! Criterion bench: thread-count sweep of the parallel fault-evaluation
//! engine, and the cone-of-influence incremental path against a full
//! re-evaluation — the two levers that keep the Section III-B candidate
//! loop cheap (motivated by the in-design DFM scoring flows of
//! PAPERS.md, which only work when per-candidate analysis is fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsyn_atpg::engine::{run_atpg, AtpgOptions};
use rsyn_atpg::incremental::{run_atpg_incremental, PreviousEvaluation};
use rsyn_bench::{analyzed, context};

/// Fault-sharded engine at 1, 2, 4, and 8 workers on one circuit's full
/// DFM fault set. Results are bit-identical across rows (asserted by the
/// engine's proptests); only the wall clock should move.
fn bench_threads_sweep(c: &mut Criterion) {
    let ctx = context();
    let state = analyzed("sparc_exu", &ctx);
    let view = state.nl.comb_view().unwrap();
    let mut group = c.benchmark_group("threads_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(state.faults.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let options = AtpgOptions::default().with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &state, |b, state| {
            b.iter(|| run_atpg(&state.nl, &view, &state.faults, &options));
        });
    }
    group.finish();
}

/// Incremental candidate re-evaluation (empty change set: the pure
/// carry-over overhead of matching, coverage verification, and
/// re-compaction) against a full ATPG re-run on the same fault set.
fn bench_incremental_vs_full(c: &mut Criterion) {
    let ctx = context();
    let state = analyzed("sparc_tlu", &ctx);
    let view = state.nl.comb_view().unwrap();
    let options = AtpgOptions::default();
    let mut group = c.benchmark_group("reeval");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("full"), &state, |b, state| {
        b.iter(|| run_atpg(&state.nl, &view, &state.faults, &options));
    });
    group.bench_with_input(BenchmarkId::from_parameter("incremental"), &state, |b, state| {
        let previous = PreviousEvaluation { faults: &state.faults, result: &state.atpg };
        b.iter(|| run_atpg_incremental(&state.nl, &view, &state.faults, &options, &previous, &[]));
    });
    group.finish();
}

criterion_group!(benches, bench_threads_sweep, bench_incremental_vs_full);
criterion_main!(benches);
