//! `rsyn` — facade crate re-exporting the full DFM-resynthesis workspace.
//!
//! This reproduction of *"Resynthesis for Avoiding Undetectable Faults Based
//! on Design-for-Manufacturability Guidelines"* (DATE 2019) is organised as a
//! set of focused crates; this facade re-exports each of them under a short
//! module name so that examples and downstream users can depend on a single
//! crate:
//!
//! * [`netlist`] — cells, the 21-cell library, the gate-level netlist;
//! * [`logic`] — AIG synthesis and restricted technology mapping;
//! * [`atpg`] — PODEM test generation and fault simulation (with a
//!   fault-sharded parallel engine whose results are thread-count
//!   independent, and cone-of-influence incremental re-evaluation);
//! * [`dfm`] — DFM guidelines, layout scanning, defect→fault translation;
//! * [`pdesign`] — floorplan, placement, routing, timing and power;
//! * [`circuits`] — the benchmark circuit generators;
//! * [`cluster`] — structural clustering of undetectable faults;
//! * [`core`] — the paper's two-phase resynthesis procedure;
//! * [`observe`] — stage spans, deterministic counters, run manifests;
//! * [`resilience`] — typed flow errors, deterministic failure injection,
//!   abort-escalation retry policies, and checkpoint/resume.

pub use rsyn_atpg as atpg;
pub use rsyn_cache as cache;
pub use rsyn_circuits as circuits;
pub use rsyn_cluster as cluster;
pub use rsyn_core as core;
pub use rsyn_dfm as dfm;
pub use rsyn_logic as logic;
pub use rsyn_netlist as netlist;
pub use rsyn_observe as observe;
pub use rsyn_pdesign as pdesign;
pub use rsyn_resilience as resilience;
